package hydra

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hydra/internal/passage"
	"hydra/internal/pipeline"
)

// SurfaceOptions tunes how PassageSurface places its adaptive time grid.
// The zero value selects the defaults noted on each field.
type SurfaceOptions struct {
	// SeedPoints is the size of the initial geometric grid (default 24).
	// The seed spans the passage-time mass located by PassageMoments:
	// from a fraction of the fastest state's mean to the slowest state's
	// mean plus four standard deviations.
	SeedPoints int
	// MaxRefine bounds the refinement passes that subdivide grid
	// intervals where the CDF is steep (default 3).
	MaxRefine int
	// RefineJump is the CDF increase across one grid interval above
	// which the interval is split at its geometric midpoint (default
	// 0.04). The increase is measured per source state, not on some
	// fixed mixture: every weighting the surface can serve is a convex
	// combination of per-state columns, so bounding the worst state's
	// jump bounds them all. Smaller values buy interpolation accuracy
	// with more t-points per surface.
	RefineJump float64
	// PCap is the CDF mass the grid must reach before the build stops
	// extending it (default 0.9995). Quantile queries with p beyond the
	// mass actually reached fail rather than extrapolate.
	PCap float64
	// MaxExtend bounds the geometric tail extensions appended when the
	// seed grid stops short of PCap (default 10). A defective
	// distribution plateaus below PCap and stops extending early.
	MaxExtend int
	// Hint is the fallback time scale for the seed grid when the moment
	// system has no solution — an unreachable target set makes the mean
	// passage time infinite (default 1).
	Hint float64
}

func (so SurfaceOptions) withDefaults() SurfaceOptions {
	if so.SeedPoints < 4 {
		so.SeedPoints = 24
	}
	if so.MaxRefine == 0 {
		so.MaxRefine = 3
	}
	if so.RefineJump <= 0 {
		so.RefineJump = 0.04
	}
	if so.PCap <= 0 || so.PCap >= 1 {
		so.PCap = 0.9995
	}
	if so.MaxExtend == 0 {
		so.MaxExtend = 10
	}
	if so.Hint <= 0 {
		so.Hint = 1
	}
	return so
}

// surfaceOptions resolves the surface knobs from an Options value.
func (o *Options) surfaceOptions() SurfaceOptions {
	if o == nil {
		return SurfaceOptions{}.withDefaults()
	}
	return o.Surface.withDefaults()
}

// CanonicalStates returns the canonical form of a state set: sorted and
// deduplicated. Two requests naming the same states in different orders
// (or with repeats) are the same question — the Eq. (5) weighting is a
// function of the set — so everything that keys caches or coalescing on
// a state set should key on this form.
func CanonicalStates(states []int) []int {
	out := append([]int(nil), states...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// stateSetKey renders a canonical state set as a map key.
func stateSetKey(states []int) string {
	var b strings.Builder
	for i, s := range states {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// DefectiveError reports a quantile query whose probability level lies
// beyond the CDF mass the surface's grid actually reached: either the
// distribution is defective (the targets are unreachable from some
// source mass, so F(∞) < 1) or the requested level exceeds the surface's
// PCap coverage. The surface refuses to extrapolate past its grid.
type DefectiveError struct {
	P    float64 // requested probability level
	FMax float64 // CDF mass reached at the grid's last point
	TMax float64 // the grid's last time point
	// Plateau is true when the build's tail extensions stopped gaining
	// mass — the signature of a defective distribution rather than a
	// merely slow tail.
	Plateau bool
}

func (e *DefectiveError) Error() string {
	why := "grid coverage ends below the requested level"
	if e.Plateau {
		why = "the CDF plateaued during the build (defective distribution: some source mass never reaches the targets)"
	}
	return fmt.Sprintf("hydra: quantile p=%v unreachable: F(%v)=%.6g and %s; refusing to extrapolate",
		e.P, e.TMax, e.FMax, why)
}

// surfaceRun is one solve contributing a subset of the grid's t-points.
type surfaceRun struct {
	times []float64
	vr    *VectorRun
}

// surfaceColumn is one source weighting's monotone CDF over the grid,
// with the Fritsch–Carlson slopes of its monotone cubic interpolant.
type surfaceColumn struct {
	f []float64 // isotone-clamped CDF values, aligned with Surface.times
	d []float64 // PCHIP derivatives at the grid points
}

// Surface is a precomputed passage-time CDF surface for one
// (model, targets, method): a monotone CDF on an adaptive time grid,
// evaluated from vector solves so it serves EVERY source weighting.
// Building it costs one solve per grid stage; after that a quantile
// query is a binary search plus one monotone-cubic inversion — no
// solver work, no transform inversions beyond the per-weighting column
// build (one inversion per grid point, done once and cached).
//
// A Surface is safe for concurrent use once built.
type Surface struct {
	model   *Model
	targets []int
	opts    *Options // concrete-method copy used for every run and read

	times   []float64    // sorted grid
	runs    []surfaceRun // each holds the vectors for a subset of times
	stats   *RunStats    // aggregated build statistics
	solves  int          // grid stages solved
	plateau bool         // tail extensions stopped gaining mass

	mu      sync.Mutex
	columns map[string]*surfaceColumn // canonical source set → CDF column
}

// PassageSurface builds the quantile surface for a target set: one
// spec-keyed CDF solve per grid stage on an adaptive time grid, serving
// every source weighting and every probability level afterwards. name
// labels the underlying solve specs ("" selects the library default);
// services sharing one cache across models must embed model identity in
// it, exactly as for NewPassageSpec. cache may be nil; when set, every
// grid stage runs through it, so rebuilding a surface after a restart
// reuses the checkpointed s-points.
//
// The method must be concrete ("euler", "laguerre" or "talbot") — the
// surface's grid stages must share one inverter configuration.
func (m *Model) PassageSurface(name string, targets []int, cache Cache, opts *Options) (*Surface, error) {
	if opts != nil && opts.Method == "auto" {
		return nil, fmt.Errorf(`hydra: quantile surfaces need a concrete inversion method ("euler", "laguerre" or "talbot"), not "auto"`)
	}
	if name == "" {
		name = m.specName(pipeline.PassageCDF)
	}
	so := opts.surfaceOptions()
	s := &Surface{
		model:   m,
		targets: append([]int(nil), targets...),
		opts:    opts,
		stats:   &RunStats{},
		columns: make(map[string]*surfaceColumn),
	}

	lo, hi := m.surfaceSeedRange(targets, so)
	if err := s.addRun(name, geomGrid(lo, hi, so.SeedPoints), cache); err != nil {
		return nil, err
	}

	// Tail extension: append geometric points until the reference CDF
	// reaches PCap, the extension budget runs out, or the mass stops
	// growing (a defective distribution never reaches PCap — record the
	// plateau so queries past the reached mass can say why they fail).
	// Extension runs before refinement so the splitting pass below sees
	// the whole grid, coarse tail included.
	for ext := 0; ext < so.MaxExtend; ext++ {
		ref, err := s.referenceColumn()
		if err != nil {
			return nil, err
		}
		top := ref[len(ref)-1]
		if top >= so.PCap {
			break
		}
		tmax := s.times[len(s.times)-1]
		ext := []float64{tmax * math.Cbrt(2), tmax * math.Cbrt(4), tmax * 2}
		if err := s.addRun(name, ext, cache); err != nil {
			return nil, err
		}
		ref2, err := s.referenceColumn()
		if err != nil {
			return nil, err
		}
		if ref2[len(ref2)-1]-top < 1e-9 {
			s.plateau = true
			break
		}
	}
	if ref, err := s.referenceColumn(); err == nil && ref[len(ref)-1] < so.PCap {
		s.plateau = true
	}

	// Refinement: split intervals where any single state's CDF jumps by
	// more than RefineJump, plus the head when mass already sits below
	// the first grid point. Steering with the worst per-state jump —
	// not a fixed mixture — keeps the grid dense wherever ANY weighting
	// is steep: a slow minority source's tail climb is invisible to the
	// uniform mixture but dominates that source's own quantiles.
	for pass := 0; pass < so.MaxRefine; pass++ {
		jumps, head, err := s.intervalJumps()
		if err != nil {
			return nil, err
		}
		var add []float64
		if head > so.RefineJump {
			add = append(add, s.times[0]/2)
		}
		for i, j := range jumps {
			if j > so.RefineJump {
				add = append(add, math.Sqrt(s.times[i]*s.times[i+1]))
			}
		}
		if len(add) == 0 {
			break
		}
		if err := s.addRun(name, add, cache); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// intervalJumps returns, per grid interval, the largest CDF increase any
// single source state takes across it, plus the largest mass any state
// already holds at the first grid point. Both are upper bounds over
// every servable weighting (each is a convex combination of per-state
// columns), so the refinement loop above splits an interval exactly when
// some weighting could be steep inside it. Cost is one inversion per
// (state, grid point) — linear in states, well under the solve that
// produced the vectors.
func (s *Surface) intervalJumps() ([]float64, float64, error) {
	jumps := make([]float64, len(s.times)-1)
	vals := make([]float64, len(s.times))
	var head float64
	weight := []float64{1}
	for st := 0; st < s.model.NumStates(); st++ {
		state := []int{st}
		for _, run := range s.runs {
			r, err := ReadRun(run.vr, state, weight, run.times, s.opts)
			if err != nil {
				return nil, 0, err
			}
			for i, t := range run.times {
				vals[s.gridIndex(t)] = r.Values[i]
			}
		}
		// Clamp the same inversion noise buildColumn tolerates; a
		// non-finite value fails the build there, not here.
		for i, v := range vals {
			if math.IsNaN(v) || v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			vals[i] = v
		}
		if vals[0] > head {
			head = vals[0]
		}
		for i := 0; i+1 < len(vals); i++ {
			if d := vals[i+1] - vals[i]; d > jumps[i] {
				jumps[i] = d
			}
		}
	}
	return jumps, head, nil
}

// surfaceSeedRange brackets the passage-time mass for the seed grid
// using the moment oracle: from a fraction of the fastest per-state mean
// to the slowest mean plus four standard deviations. Any weighting's CDF
// is a mixture of the per-state CDFs, so a range covering every state
// covers every weighting. When the moment system has no finite solution
// (unreachable targets make the mean infinite) the Hint scale is used;
// the tail-extension loop then finds whatever mass exists.
func (m *Model) surfaceSeedRange(targets []int, so SurfaceOptions) (lo, hi float64) {
	fallback := func() (float64, float64) { return so.Hint / 64, so.Hint * 4 }
	mo, err := passage.PassageMoments(m.ss.Model, targets, passage.Options{})
	if err != nil {
		return fallback()
	}
	minMean := math.Inf(1)
	maxTail := 0.0
	for i := range mo.Mean {
		mean := mo.Mean[i]
		if !(mean > 0) || math.IsInf(mean, 0) {
			continue
		}
		variance := mo.Second[i] - mean*mean
		if math.IsNaN(variance) || math.IsInf(variance, 0) {
			continue
		}
		if variance < 0 {
			variance = 0
		}
		tail := mean + 4*math.Sqrt(variance)
		if mean < minMean {
			minMean = mean
		}
		if tail > maxTail {
			maxTail = tail
		}
	}
	if !(maxTail > 0) || math.IsInf(minMean, 1) {
		return fallback()
	}
	lo = minMean / 32
	hi = maxTail
	if lo >= hi {
		lo = hi / 128
	}
	return lo, hi
}

// geomGrid returns n geometrically spaced points on [lo, hi].
func geomGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// addRun solves the spec at the given new times and merges them into the
// grid. Times already on the grid are skipped.
func (s *Surface) addRun(name string, times []float64, cache Cache) error {
	var fresh []float64
	for _, t := range times {
		if !s.hasTime(t) {
			fresh = append(fresh, t)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	sort.Float64s(fresh)
	spec, err := s.model.newSpec(name, pipeline.PassageCDF, s.targets, fresh, s.opts)
	if err != nil {
		return err
	}
	vr, err := s.model.RunSpec(spec, cache, s.opts)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, surfaceRun{times: fresh, vr: vr})
	s.times = append(s.times, fresh...)
	sort.Float64s(s.times)
	s.solves++
	s.stats.Merge(vr.Stats)
	// Grid changed: every cached column is stale.
	s.mu.Lock()
	s.columns = make(map[string]*surfaceColumn)
	s.mu.Unlock()
	return nil
}

func (s *Surface) hasTime(t float64) bool {
	i := sort.SearchFloat64s(s.times, t)
	return i < len(s.times) && s.times[i] == t
}

// referenceColumn is the build-time steering column: the CDF under a
// uniform weighting over all states.
func (s *Surface) referenceColumn() ([]float64, error) {
	n := s.model.NumStates()
	states := make([]int, n)
	weights := make([]float64, n)
	for i := range states {
		states[i] = i
		weights[i] = 1 / float64(n)
	}
	col, err := s.buildColumn(states, weights)
	if err != nil {
		return nil, err
	}
	return col.f, nil
}

// column returns (building and caching on first use) the monotone CDF
// column for a source set, resolved through the model's Eq. (5)
// weighting exactly as every other analysis entry point.
func (s *Surface) column(sources []int) (*surfaceColumn, error) {
	canon := CanonicalStates(sources)
	key := stateSetKey(canon)
	s.mu.Lock()
	if col, ok := s.columns[key]; ok {
		s.mu.Unlock()
		return col, nil
	}
	s.mu.Unlock()
	src, err := s.model.sourceWeights(canon)
	if err != nil {
		return nil, err
	}
	col, err := s.buildColumn(src.States, src.Weights)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.columns[key] = col
	s.mu.Unlock()
	return col, nil
}

// buildColumn reads every run through the weighting (one inversion per
// grid point), sanitizes the inversion noise and enforces monotonicity
// by isotone clamping, then fits the monotone cubic slopes.
func (s *Surface) buildColumn(states []int, weights []float64) (*surfaceColumn, error) {
	f := make([]float64, len(s.times))
	for _, run := range s.runs {
		r, err := ReadRun(run.vr, states, weights, run.times, s.opts)
		if err != nil {
			return nil, err
		}
		for i, t := range run.times {
			f[s.gridIndex(t)] = r.Values[i]
		}
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("hydra: surface CDF at t=%v is non-finite (%v)", s.times[i], v)
		}
		// Inversion noise: clamp tiny negatives at the head and tiny
		// overshoots past 1 in the tail.
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		f[i] = v
	}
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1] {
			f[i] = f[i-1]
		}
	}
	return &surfaceColumn{f: f, d: pchipSlopes(s.times, f)}, nil
}

func (s *Surface) gridIndex(t float64) int {
	return sort.SearchFloat64s(s.times, t)
}

// Quantile returns the time t* with F(t*) = p for the source set: a
// binary search over the grid plus one monotone-cubic inversion. The
// sources are resolved through the model's Eq. (5) weighting; the first
// query for a weighting builds its CDF column (one inversion per grid
// point), later queries reuse it. A probability level beyond the mass
// the grid reached returns a *DefectiveError instead of extrapolating.
func (s *Surface) Quantile(sources []int, p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("hydra: quantile probability %v outside (0,1)", p)
	}
	col, err := s.column(sources)
	if err != nil {
		return 0, err
	}
	n := len(s.times)
	if p > col.f[n-1] {
		return 0, &DefectiveError{P: p, FMax: col.f[n-1], TMax: s.times[n-1], Plateau: s.plateau}
	}
	// Below the first grid point the CDF is taken linear from (0, 0):
	// passage times are positive, so F(0) = 0.
	if p <= col.f[0] {
		return s.times[0] * p / col.f[0], nil
	}
	// Largest i with f[i] < p; then f[i] < p ≤ f[i+1].
	i := sort.Search(n, func(k int) bool { return col.f[k] >= p }) - 1
	return invertHermite(s.times[i], s.times[i+1], col.f[i], col.f[i+1], col.d[i], col.d[i+1], p), nil
}

// CDF returns the interpolated distribution value at t for the source
// set. Times beyond the grid clamp to the boundary values (0 below,
// the reached mass above) — like Quantile, the surface never
// extrapolates.
func (s *Surface) CDF(sources []int, t float64) (float64, error) {
	col, err := s.column(sources)
	if err != nil {
		return 0, err
	}
	n := len(s.times)
	switch {
	case t <= 0:
		return 0, nil
	case t <= s.times[0]:
		return col.f[0] * t / s.times[0], nil
	case t >= s.times[n-1]:
		return col.f[n-1], nil
	}
	i := sort.SearchFloat64s(s.times, t)
	if s.times[i] == t {
		return col.f[i], nil
	}
	i--
	return evalHermite(s.times[i], s.times[i+1], col.f[i], col.f[i+1], col.d[i], col.d[i+1], t), nil
}

// Times returns a copy of the surface's adaptive grid.
func (s *Surface) Times() []float64 { return append([]float64(nil), s.times...) }

// Stats returns the aggregated run statistics of every grid stage the
// build solved. Reading them alongside Solves shows the build cost the
// per-query interpolations amortize.
func (s *Surface) Stats() *RunStats { return s.stats }

// Solves reports how many grid stages (seed, refinements, extensions)
// the build ran.
func (s *Surface) Solves() int { return s.solves }

// Defective reports whether the build's tail extensions plateaued below
// the coverage target — the signature of a defective distribution.
func (s *Surface) Defective() bool { return s.plateau }

// pchipSlopes computes Fritsch–Carlson monotone cubic slopes for the
// (t, f) data: the resulting Hermite interpolant is monotone wherever
// the data is, which keeps the surface's CDF columns invertible.
func pchipSlopes(t, f []float64) []float64 {
	n := len(t)
	d := make([]float64, n)
	if n < 2 {
		return d
	}
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i+1 < n; i++ {
		h[i] = t[i+1] - t[i]
		delta[i] = (f[i+1] - f[i]) / h[i]
	}
	d[0] = delta[0]
	d[n-1] = delta[n-2]
	for i := 1; i+1 < n; i++ {
		if delta[i-1] <= 0 || delta[i] <= 0 {
			// A flat (or clamped) neighbour: zero slope preserves
			// monotonicity through the plateau.
			d[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	return d
}

// evalHermite evaluates the cubic Hermite segment (t0,f0,d0)-(t1,f1,d1)
// at t.
func evalHermite(t0, t1, f0, f1, d0, d1, t float64) float64 {
	h := t1 - t0
	u := (t - t0) / h
	u2 := u * u
	u3 := u2 * u
	return f0*(2*u3-3*u2+1) + d0*h*(u3-2*u2+u) + f1*(-2*u3+3*u2) + d1*h*(u3-u2)
}

// invertHermite solves H(t) = p on a monotone Hermite segment by
// bisection on the (cheap, closed-form) cubic — no solver work.
func invertHermite(t0, t1, f0, f1, d0, d1, p float64) float64 {
	lo, hi := t0, t1
	for i := 0; i < 60 && hi-lo > 1e-15*hi; i++ {
		mid := (lo + hi) / 2
		if evalHermite(t0, t1, f0, f1, d0, d1, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// QuantileQuery is one (source set, probability level) question for
// PassageQuantileMulti.
type QuantileQuery struct {
	Sources []int
	P       float64
}

// PassageQuantileMulti answers many quantile queries against one target
// set from a single surface build: every query is an interpolated read
// of the same precomputed CDF surface, so the marginal cost of an extra
// (sources, p) pair is a binary search — not a bisection loop of
// numerical inversions. Results align with queries.
func (m *Model) PassageQuantileMulti(targets []int, queries []QuantileQuery, opts *Options) ([]float64, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("hydra: no quantile queries")
	}
	s, err := m.PassageSurface("", targets, nil, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(queries))
	for i, q := range queries {
		t, err := s.Quantile(q.Sources, q.P)
		if err != nil {
			return nil, fmt.Errorf("hydra: quantile query %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
