package hydra

import (
	"fmt"
	"math"

	"hydra/internal/lt"
	"hydra/internal/passage"
	"hydra/internal/pipeline"
)

// Options configures an analysis run. The zero value selects the paper's
// defaults: Euler inversion (A=18.4, 33 s-points per t-point), one
// worker, mass-bound truncation at 1e-8, no checkpointing.
type Options struct {
	// Method selects the inverter: "euler" (default), "laguerre",
	// "talbot" or "auto". The paper's guidance applies — Euler is the
	// safe choice for densities with discontinuities; Laguerre and
	// Talbot suit smooth densities (Talbot with the smallest point
	// budget). "auto" implements §4's selection rule mechanically: it
	// evaluates the Laguerre contour first, accepts the result when the
	// Laguerre coefficients decay (a smooth original), and falls back to
	// Euler otherwise.
	Method string
	// Euler overrides the Euler parameters when non-zero.
	Euler lt.Euler
	// Laguerre overrides the Laguerre parameters when non-zero.
	Laguerre lt.Laguerre
	// Workers is the in-process worker count (default 1).
	Workers int
	// Backend overrides where jobs execute: nil selects the in-process
	// pool (Workers goroutines per run); a *Fleet from NewFleet executes
	// on resident TCP worker processes instead, in which case Workers is
	// ignored — parallelism is however many workers are connected.
	Backend Backend
	// CheckpointPath enables disk checkpointing of s-point results.
	CheckpointPath string
	// Solver tunes the iterative passage-time algorithm.
	Solver passage.Options
	// Surface tunes the adaptive grid PassageSurface builds; the zero
	// value selects the documented defaults. Ignored by every other
	// entry point.
	Surface SurfaceOptions
	// Shard asks a fleet backend to split each solve's kernel into up to
	// this many contiguous row blocks held by different workers (wire v4
	// sharding) instead of farming whole s-points out — the right trade
	// when one model is too large or too slow for a single worker's
	// sweep. Zero or one leaves solves unsharded. Ignored by the
	// in-process backend and for transient quantities; sharded and
	// unsharded runs share cache entries and checkpoints (the hint is
	// excluded from spec fingerprints).
	Shard int
}

func (o *Options) inverter() (lt.Inverter, error) {
	if o == nil {
		return lt.DefaultEuler(), nil
	}
	switch o.Method {
	case "", "euler":
		e := o.Euler
		if e.M == 0 {
			e = lt.DefaultEuler()
		}
		return e, nil
	case "laguerre":
		l := o.Laguerre
		if l.N == 0 {
			l = lt.DefaultLaguerre()
		}
		return l, nil
	case "talbot":
		return lt.DefaultTalbot(), nil
	default:
		return nil, fmt.Errorf("hydra: unknown inversion method %q", o.Method)
	}
}

func (o *Options) workers() int {
	if o == nil || o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o *Options) solver() passage.Options {
	if o == nil {
		return passage.Options{}
	}
	return o.Solver
}

func (o *Options) shard() int {
	if o == nil || o.Shard < 2 {
		return 0
	}
	return o.Shard
}

// Result is a computed curve: Values[i] estimates the measure at
// Times[i].
type Result struct {
	Times  []float64
	Values []float64
	// Stats reports pipeline behaviour (cache hits, wall time, worker
	// share) for the run that produced the values.
	Stats *pipeline.RunStats
}

// sourceWeights derives the α̃ vector of Eq. (5) for the source set: the
// trivial weighting for a single source, the embedded chain's
// steady-state weighting for several (using the model's cached vector).
func (m *Model) sourceWeights(sources []int) (passage.SourceWeights, error) {
	if len(sources) == 0 {
		return passage.SourceWeights{}, fmt.Errorf("hydra: empty source set")
	}
	for _, s := range sources {
		if s < 0 || s >= m.NumStates() {
			return passage.SourceWeights{}, fmt.Errorf("hydra: source %d outside model of %d states", s, m.NumStates())
		}
	}
	if len(sources) == 1 {
		return passage.SingleSource(sources[0]), nil
	}
	pi, err := m.steadyState()
	if err != nil {
		return passage.SourceWeights{}, err
	}
	var total float64
	for _, s := range sources {
		if s < 0 || s >= len(pi) {
			return passage.SourceWeights{}, fmt.Errorf("hydra: source %d out of range", s)
		}
		total += pi[s]
	}
	if total <= 0 {
		return passage.SourceWeights{}, fmt.Errorf("hydra: source states have no steady-state probability")
	}
	w := make([]float64, len(sources))
	for i, s := range sources {
		w[i] = pi[s] / total
	}
	return passage.SourceWeights{States: sources, Weights: w}, nil
}

// run assembles a job for the quantity, executes it over the worker
// pool, and inverts.
func (m *Model) run(q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Result, error) {
	if opts != nil && opts.Method == "auto" {
		for _, t := range times {
			if !(t > 0) {
				return nil, fmt.Errorf("hydra: analysis times must be positive, got %v", t)
			}
		}
		return m.autoRun(q, sources, targets, times, opts)
	}
	job, err := m.newJob(m.specName(q), q, sources, targets, times, opts)
	if err != nil {
		return nil, err
	}
	return m.RunJob(job, times, nil, opts)
}

// specName is the default solve name for a quantity: shared by every
// entry point (curves, multi-source batches, quantile searches) so
// their s-points land in the same cache entries.
func (m *Model) specName(q pipeline.Quantity) string {
	return fmt.Sprintf("%s[%d states]", q, m.NumStates())
}

// runMulti executes ONE solve for the quantity and reads it through
// every source set: the vector engine's batch entry point. The returned
// results are index-aligned with sourceSets and share the single run's
// stats — the marginal cost of an extra source set is one dot product
// per s-point plus one inversion, not a solve.
func (m *Model) runMulti(q pipeline.Quantity, sourceSets [][]int, targets []int, times []float64, opts *Options) ([]*Result, error) {
	if len(sourceSets) == 0 {
		return nil, fmt.Errorf("hydra: no source sets")
	}
	if opts != nil && opts.Method == "auto" {
		return nil, fmt.Errorf(`hydra: multi-source runs need a concrete inversion method ("euler", "laguerre" or "talbot"), not "auto"`)
	}
	// Resolve every weighting before solving, so a bad source set fails
	// the request without spending kernel time.
	weightings := make([]passage.SourceWeights, len(sourceSets))
	for i, sources := range sourceSets {
		src, err := m.sourceWeights(sources)
		if err != nil {
			return nil, fmt.Errorf("hydra: source set %d: %w", i, err)
		}
		weightings[i] = src
	}
	spec, err := m.newSpec(m.specName(q), q, targets, times, opts)
	if err != nil {
		return nil, err
	}
	vr, err := m.RunSpec(spec, nil, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(weightings))
	for i, src := range weightings {
		r, err := ReadRun(vr, src.States, src.Weights, times, opts)
		if err != nil {
			return nil, fmt.Errorf("hydra: source set %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// PassageDensity computes the first-passage-time density f(t) from the
// source set into the target set at the given times. Multiple sources
// are weighted at steady state per Eq. (5).
func (m *Model) PassageDensity(sources, targets []int, times []float64, opts *Options) (*Result, error) {
	return m.run(pipeline.PassageDensity, sources, targets, times, opts)
}

// PassageCDF computes the passage-time distribution F(t) (by inverting
// L(s)/s, the Fig. 5 construction).
func (m *Model) PassageCDF(sources, targets []int, times []float64, opts *Options) (*Result, error) {
	return m.run(pipeline.PassageCDF, sources, targets, times, opts)
}

// TransientDistribution computes P(Z(t) ∈ targets | Z(0) ∼ sources) via
// Eq. (7).
func (m *Model) TransientDistribution(sources, targets []int, times []float64, opts *Options) (*Result, error) {
	return m.run(pipeline.TransientDist, sources, targets, times, opts)
}

// PassageDensityMulti computes the passage density curve for many
// source sets from ONE solve: the kernel work is done once per s-point
// and each source set costs only a dot product and an inversion.
// Results align with sourceSets.
func (m *Model) PassageDensityMulti(sourceSets [][]int, targets []int, times []float64, opts *Options) ([]*Result, error) {
	return m.runMulti(pipeline.PassageDensity, sourceSets, targets, times, opts)
}

// PassageCDFMulti is PassageCDF for many source sets from one solve.
func (m *Model) PassageCDFMulti(sourceSets [][]int, targets []int, times []float64, opts *Options) ([]*Result, error) {
	return m.runMulti(pipeline.PassageCDF, sourceSets, targets, times, opts)
}

// TransientDistributionMulti is TransientDistribution for many source
// sets from one solve.
func (m *Model) TransientDistributionMulti(sourceSets [][]int, targets []int, times []float64, opts *Options) ([]*Result, error) {
	return m.runMulti(pipeline.TransientDist, sourceSets, targets, times, opts)
}

// PassageQuantile returns the time t* with F(t*) = p (a response-time
// quantile, the headline §1 metric: e.g. p = 0.9858 reproduces the
// paper's "processes 175 voters in under 440s" statement). The CDF is
// bracketed by doubling from hint and refined by bisection to relTol
// (default 1e-4 of the bracket width).
//
// The search prepares one backend (and, for the in-process pool, its
// solver workspaces) up front and reuses it across every bisection
// iteration: each step builds only a one-point spec, so the dozens of
// CDF evaluations a search issues never rebuild evaluators or kernel
// patterns.
func (m *Model) PassageQuantile(sources, targets []int, p float64, hint float64, opts *Options) (float64, error) {
	if opts != nil && opts.Method == "auto" {
		// "auto" re-selects the inverter per evaluation; keep the
		// straightforward per-call path for it.
		return QuantileSearch(p, hint, func(t float64) (float64, error) {
			r, err := m.PassageCDF(sources, targets, []float64{t}, opts)
			if err != nil {
				return 0, err
			}
			return r.Values[0], nil
		})
	}
	src, err := m.sourceWeights(sources)
	if err != nil {
		return 0, err
	}
	be := m.backend(opts)
	// One checkpoint handle for the whole search, so an interrupted or
	// repeated search replays its points from disk — the durability the
	// per-step RunJob path always had, paid for with a single open.
	var cache Cache
	if opts != nil && opts.CheckpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(opts.CheckpointPath)
		if err != nil {
			return 0, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	return QuantileSearch(p, hint, func(t float64) (float64, error) {
		spec, err := m.newSpec(m.specName(pipeline.PassageCDF), pipeline.PassageCDF, targets, []float64{t}, opts)
		if err != nil {
			return 0, err
		}
		vectors, stats, err := be.Execute(spec, cache)
		if err != nil {
			return 0, err
		}
		vr := &VectorRun{Spec: spec, Vectors: vectors, Stats: stats}
		r, err := ReadRun(vr, src.States, src.Weights, []float64{t}, opts)
		if err != nil {
			return 0, err
		}
		return r.Values[0], nil
	})
}

// QuantileSearch solves F(t*) = p for a monotone CDF supplied as an
// evaluator: the bracket grows by doubling from hint until F(hi) ≥ p,
// then bisection refines to a relative tolerance of 1e-4. It is the
// search loop behind PassageQuantile, exported so callers that evaluate
// the CDF through their own machinery (a caching scheduler, a remote
// worker pool) reuse the identical bracketing policy — and therefore
// the identical cacheable CDF evaluations.
func QuantileSearch(p, hint float64, cdfAt func(float64) (float64, error)) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("hydra: quantile probability %v outside (0,1)", p)
	}
	if !(hint > 0) {
		return 0, fmt.Errorf("hydra: quantile hint must be positive")
	}
	// Numerical inversion of a CDF can return small negative noise near
	// t = 0 (clamped — it is still a usable "below p" answer) or, when
	// the transform evaluation breaks down, NaN/Inf. A non-finite value
	// must fail the search loudly: NaN compares false against p, which
	// the bracketing loop would silently read as F(t) >= p and converge
	// to a meaningless quantile.
	at := func(t float64) (float64, error) {
		f, err := cdfAt(t)
		if err != nil {
			return 0, err
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("hydra: CDF evaluation at t=%v returned non-finite value %v", t, f)
		}
		if f < 0 {
			f = 0
		}
		return f, nil
	}
	lo, hi := 0.0, hint
	fhi, err := at(hi)
	if err != nil {
		return 0, err
	}
	for iter := 0; fhi < p; iter++ {
		if iter > 60 {
			return 0, fmt.Errorf("hydra: CDF never reaches %v (last F(%v)=%v)", p, hi, fhi)
		}
		lo = hi
		hi *= 2
		if fhi, err = at(hi); err != nil {
			return 0, err
		}
	}
	for i := 0; i < 48 && hi-lo > 1e-4*hi; i++ {
		mid := (lo + hi) / 2
		fm, err := at(mid)
		if err != nil {
			return 0, err
		}
		if fm < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// MeanPassageTime integrates t·f(t) numerically from a density result —
// a convenience for quick summaries (prefer analytic means for rigour).
func MeanPassageTime(r *Result) float64 {
	if len(r.Times) < 2 {
		return math.NaN()
	}
	var mean, mass float64
	for i := 0; i+1 < len(r.Times); i++ {
		dt := r.Times[i+1] - r.Times[i]
		tm := (r.Times[i] + r.Times[i+1]) / 2
		fm := (r.Values[i] + r.Values[i+1]) / 2
		mean += tm * fm * dt
		mass += fm * dt
	}
	if mass <= 0 {
		return math.NaN()
	}
	return mean / mass
}

// PassageMoments returns the exact mean and variance of the passage time
// from the (steady-state-weighted) source set into the target set,
// computed by first-step analysis in the time domain — an independent
// oracle for the transform pipeline and the cheap route to mean response
// times. All sojourn distributions must have known second moments.
func (m *Model) PassageMoments(sources, targets []int) (mean, variance float64, err error) {
	src, err := m.sourceWeights(sources)
	if err != nil {
		return 0, 0, err
	}
	mo, err := passage.PassageMoments(m.ss.Model, targets, passage.Options{})
	if err != nil {
		return 0, 0, err
	}
	mean, variance = mo.WeightedMoments(src)
	return mean, variance, nil
}

// autoRun implements Method "auto": evaluate on the Laguerre contour,
// keep the result if the coefficient decay certifies a smooth original,
// otherwise rerun with Euler (the paper's discontinuity-safe method).
func (m *Model) autoRun(q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Result, error) {
	lag := opts.Laguerre
	if lag.N == 0 {
		lag = lt.DefaultLaguerre()
	}
	lagOpts := *opts
	lagOpts.Method = "laguerre"
	lagOpts.Laguerre = lag
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{
		SolveSpec: pipeline.SolveSpec{
			Name:        fmt.Sprintf("auto-%s[%d states]", q, m.NumStates()),
			Quantity:    q,
			Targets:     targets,
			Points:      lag.Points(times),
			ModelFP:     m.fingerprint,
			ModelStates: m.NumStates(),
		},
		Sources: src.States,
		Weights: src.Weights,
	}
	if err := job.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	// Through RunSpec, not a bare Execute: RunSpec opens
	// opts.CheckpointPath, so the probe's s-points persist and replay
	// like every other run's — and a rerun after an Euler fallback
	// doesn't pay for the probe twice.
	vr, err := m.RunSpec(job.Spec(), nil, &lagOpts)
	if err != nil {
		return nil, err
	}
	stats := vr.Stats
	values := job.ReadVectors(vr.Vectors)
	decay, err := lag.CoefficientDecay(times, values)
	if err != nil {
		return nil, err
	}
	// Coefficients of a smooth original decay by many orders of
	// magnitude across the expansion; 1e-3 is a conservative cut.
	if decay < 1e-3 {
		f, err := lag.Invert(times, values)
		if err != nil {
			return nil, err
		}
		return &Result{Times: times, Values: f, Stats: stats}, nil
	}
	eulerOpts := *opts
	eulerOpts.Method = "euler"
	return m.run(q, sources, targets, times, &eulerOpts)
}
