package hydra_test

import (
	"math"
	"strings"
	"testing"

	"hydra"
)

// A well-behaved synthetic CDF for exercising the search machinery
// without a solver: F(t) = 1 - exp(-t).
func expCDF(t float64) (float64, error) { return 1 - math.Exp(-t), nil }

func TestQuantileSearchNonFiniteCDFIsAnError(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := hydra.QuantileSearch(0.5, 1.0, func(float64) (float64, error) {
			return bad, nil
		})
		if err == nil {
			t.Fatalf("QuantileSearch accepted CDF value %v; want an error", bad)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("error for CDF value %v does not name the problem: %v", bad, err)
		}
	}

	// A NaN appearing mid-bisection (not just at the first bracket probe)
	// must also surface: without the guard NaN < p is false, so the
	// search would silently treat the broken evaluation as F(t) >= p.
	calls := 0
	_, err := hydra.QuantileSearch(0.5, 1.0, func(t float64) (float64, error) {
		calls++
		if calls > 2 {
			return math.NaN(), nil
		}
		return expCDF(t)
	})
	if err == nil {
		t.Fatal("QuantileSearch accepted a mid-search NaN; want an error")
	}
}

func TestQuantileSearchClampsNegativeNoise(t *testing.T) {
	// Numerical inversion commonly yields tiny negative values near t=0.
	// The search must treat them as 0 (below p) and still converge.
	q, err := hydra.QuantileSearch(0.5, 1e-3, func(t float64) (float64, error) {
		f, _ := expCDF(t)
		if f < 0.01 {
			return -1e-12, nil // noise floor
		}
		return f, nil
	})
	if err != nil {
		t.Fatalf("QuantileSearch: %v", err)
	}
	want := -math.Log(0.5) // median of Exp(1)
	if math.Abs(q-want) > 1e-3*want {
		t.Errorf("quantile = %v, want %v", q, want)
	}
}

func TestQuantileSearchExactOnCleanCDF(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9858} {
		q, err := hydra.QuantileSearch(p, 1.0, expCDF)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		want := -math.Log(1 - p)
		if math.Abs(q-want) > 1e-3*want {
			t.Errorf("p=%v: quantile = %v, want %v", p, q, want)
		}
	}
}
