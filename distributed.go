package hydra

import (
	"fmt"
	"net"

	"hydra/internal/lt"
	"hydra/internal/passage"
	"hydra/internal/pipeline"
)

// Job re-exports the pipeline job — a source-free SolveSpec plus the
// source weighting it is read through — so masters and workers can be
// driven from the public API.
type Job = pipeline.Job

// SolveSpec re-exports the pipeline's source-free computation unit: the
// (model, quantity, targets, s-points) tuple whose fingerprint keys
// caches and coalescing, and whose evaluation yields the full
// source-indexed transform vector per s-point.
type SolveSpec = pipeline.SolveSpec

// RunStats re-exports the pipeline run statistics.
type RunStats = pipeline.RunStats

// Cache re-exports the pipeline point-cache contract: the store a run
// consults before evaluating transform points and feeds as vector
// results return. Long-running services layer a memory LRU over a disk
// checkpoint through this interface (see internal/server).
type Cache = pipeline.Cache

// Backend re-exports the pipeline execution contract: where a spec's
// s-points get evaluated. Leave Options.Backend nil for the in-process
// pool; pass a *Fleet to execute on resident TCP workers.
type Backend = pipeline.Backend

// Fleet re-exports the resident TCP worker fleet — the Backend that
// serves solves on persistent hydra-worker connections (wire protocol
// v4, still serving v3 batch workers): workers join and leave freely,
// vector results travel as chunked frames, batches lost to dead
// workers are requeued, one fleet serves every model its workers hold,
// and solves with a shard hint split into row blocks across
// shard-capable workers.
type Fleet = pipeline.Fleet

// FleetOptions re-exports the fleet tuning knobs.
type FleetOptions = pipeline.FleetOptions

// PointError re-exports the structured evaluation failure: which
// worker, which point index, and the evaluator's message.
type PointError = pipeline.PointError

// ErrHandshakeRejected re-exports the permanent handshake failure a
// fleet master answers with when a worker's protocol version or models
// are unacceptable. Reconnect loops give up on it (errors.Is) instead
// of redialing an unwinnable handshake.
var ErrHandshakeRejected = pipeline.ErrHandshakeRejected

// NewFleet starts a fleet master accepting workers on ln. Close it to
// release the listener and dismiss the workers.
func NewFleet(ln net.Listener, opts FleetOptions) *Fleet {
	return pipeline.NewFleet(ln, opts)
}

// NewPassageJob builds a distributed job for the passage density (or
// CDF when cdf is true) of a measure at the given times.
func (m *Model) NewPassageJob(name string, sources, targets []int, times []float64, cdf bool, opts *Options) (*Job, error) {
	q := pipeline.PassageDensity
	if cdf {
		q = pipeline.PassageCDF
	}
	return m.newJob(name, q, sources, targets, times, opts)
}

// NewTransientJob builds a distributed job for a transient measure.
func (m *Model) NewTransientJob(name string, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	return m.newJob(name, pipeline.TransientDist, sources, targets, times, opts)
}

// NewPassageSpec builds the source-free solve unit for a passage
// density (or CDF when cdf is true) at the given times. One spec's
// vector results serve every source weighting — see RunSpec and
// ReadRun.
func (m *Model) NewPassageSpec(name string, targets []int, times []float64, cdf bool, opts *Options) (*SolveSpec, error) {
	q := pipeline.PassageDensity
	if cdf {
		q = pipeline.PassageCDF
	}
	return m.newSpec(name, q, targets, times, opts)
}

// NewTransientSpec builds the source-free solve unit for a transient
// measure at the given times.
func (m *Model) NewTransientSpec(name string, targets []int, times []float64, opts *Options) (*SolveSpec, error) {
	return m.newSpec(name, pipeline.TransientDist, targets, times, opts)
}

// SourceWeights resolves a source set to the Eq. (5) α̃ weighting used
// by every analysis entry point: the trivial weighting for a single
// source, the embedded chain's steady-state weighting for several. The
// returned slices are ready for ReadRun.
func (m *Model) SourceWeights(sources []int) (states []int, weights []float64, err error) {
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, nil, err
	}
	return src.States, src.Weights, nil
}

// PrepareBackend resolves the backend RunSpec would use for these
// options and returns it for reuse: callers that issue many solves —
// a quantile search, a request scheduler — pass the returned value via
// Options.Backend so the in-process pool's evaluators (and their
// prepared kernel workspaces) survive across solves.
func (m *Model) PrepareBackend(opts *Options) Backend {
	return m.backend(opts)
}

// newSpec builds the source-free solve unit for a quantity at the given
// times.
func (m *Model) newSpec(name string, q pipeline.Quantity, targets []int, times []float64, opts *Options) (*SolveSpec, error) {
	for _, t := range times {
		if !(t > 0) {
			return nil, fmt.Errorf("hydra: analysis times must be positive, got %v", t)
		}
	}
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	spec := &SolveSpec{
		Name:        name,
		Quantity:    q,
		Targets:     targets,
		Points:      inv.Points(times),
		ModelFP:     m.fingerprint,
		ModelStates: m.NumStates(),
	}
	// Contour geometry hint for segment scheduling: inverters whose
	// contours group s-points into per-t blocks (Euler, Talbot) report
	// the block period, so backends keep warm-start segments inside one
	// block. Laguerre's single shared contour has no period — hint 0.
	if pp, ok := inv.(interface{ PointsPerT() int }); ok {
		spec.SegmentHint = pp.PointsPerT()
	}
	// Shard placement hint: like SegmentHint this is scheduling
	// metadata, excluded from the fingerprint, so sharded and unsharded
	// runs share cache entries and checkpoints.
	spec.ShardHint = opts.shard()
	if err := spec.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	return spec, nil
}

func (m *Model) newJob(name string, q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	spec, err := m.newSpec(name, q, targets, times, opts)
	if err != nil {
		return nil, err
	}
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{
		SolveSpec: *spec,
		Sources:   src.States,
		Weights:   src.Weights,
	}
	if err := job.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	return job, nil
}

// backend resolves where a solve executes: opts.Backend when set (e.g.
// a Fleet), otherwise an in-process pool sized by opts.Workers whose
// evaluators run against this model. The in-process pool reuses its
// evaluators across Execute calls, so repeated solves on one backend
// value — a quantile bisection, a resident server — keep their prepared
// solver workspaces.
func (m *Model) backend(opts *Options) Backend {
	if opts != nil && opts.Backend != nil {
		return opts.Backend
	}
	solverOpts := opts.solver()
	model := m.ss.Model
	return &pipeline.InProc{
		NewEvaluator: func() pipeline.Evaluator {
			return pipeline.NewSolverEvaluator(model, solverOpts)
		},
		Workers: opts.workers(),
	}
}

// VectorRun is a completed solve: for every s-point of the spec, the
// full source-indexed transform vector. Any number of source weightings
// read a VectorRun as O(N) dot products (see ReadRun), which is how one
// kernel solve serves every source and every caller.
type VectorRun struct {
	Spec    *SolveSpec
	Vectors [][]complex128
	Stats   *RunStats
}

// RunSpec executes a solve on the selected backend — opts.Backend, or
// the in-process worker pool when nil — and returns the vector results
// without inverting. cache may be nil; when it is, opts.CheckpointPath
// (if set) is opened for the duration of the run. Passing a persistent
// cache instead is how a resident service reuses transform evaluations
// across requests: the run loads every point the cache already holds
// (reported as Stats.FromCache) and evaluates only the remainder.
func (m *Model) RunSpec(spec *SolveSpec, cache Cache, opts *Options) (*VectorRun, error) {
	if cache == nil && opts != nil && opts.CheckpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	vectors, stats, err := m.backend(opts).Execute(spec, cache)
	if err != nil {
		return nil, err
	}
	return &VectorRun{Spec: spec, Vectors: vectors, Stats: stats}, nil
}

// PointVectorError reports a vector run whose result at one s-point has
// the wrong width for its spec's model: the signature of a corrupt
// checkpoint record or a cache entry written by a different model
// version. ReadRun returns it instead of letting the short vector
// silently drop source terms from the Eq. (5) dot product.
type PointVectorError struct {
	Point int // index of the offending s-point in the run
	Len   int // the vector length found
	Want  int // Spec.ModelStates
}

func (e *PointVectorError) Error() string {
	return fmt.Sprintf("hydra: vector at point %d has %d entries, spec's model has %d states (corrupt checkpoint record or mixed-version cache entry?)", e.Point, e.Len, e.Want)
}

// ReadRun reduces a vector run to a scalar curve for one source
// weighting: the α̃-weighted dot product per s-point, inverted at the
// given times with the same inverter configuration that built the
// spec's points. It is pure post-processing — no solver work — so a
// caller holding a VectorRun can serve any number of source weightings
// from it.
func ReadRun(vr *VectorRun, sources []int, weights []float64, times []float64, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{SolveSpec: *vr.Spec, Sources: sources, Weights: weights}
	n := vr.Spec.ModelStates
	if n > 0 {
		// Every per-point vector must carry exactly the model's state
		// count. A short vector (corrupt checkpoint record, a
		// mixed-version cache entry) would otherwise make ReadPoint
		// silently drop source terms; a structured error names the
		// offending point instead.
		for i, vec := range vr.Vectors {
			if len(vec) != n {
				return nil, &PointVectorError{Point: i, Len: len(vec), Want: n}
			}
		}
	} else {
		// Specs predating ModelStates (or hand-built ones) carry no
		// authoritative count; fall back to the widest observed vector so
		// source-index validation still has a bound.
		for _, vec := range vr.Vectors {
			if len(vec) > n {
				n = len(vec)
			}
		}
	}
	if err := job.Validate(n); err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, job.ReadVectors(vr.Vectors))
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: vr.Stats}, nil
}

// RunJob executes a prepared job (from NewPassageJob or NewTransientJob)
// on the selected backend and inverts the transform values at the given
// times: RunSpec on the job's embedded spec, then a ReadRun through the
// job's source weighting. The job's s-points must have been built with
// the same inverter configuration opts selects — which NewPassageJob
// and NewTransientJob guarantee when handed the same opts.
//
// cache may be nil; see RunSpec for the caching contract. Because the
// cache is keyed by the source-free spec, two jobs that differ only in
// sources share every cached s-point.
func (m *Model) RunJob(job *Job, times []float64, cache Cache, opts *Options) (*Result, error) {
	vr, err := m.RunSpec(job.Spec(), cache, opts)
	if err != nil {
		return nil, err
	}
	return ReadRun(vr, job.Sources, job.Weights, times, opts)
}

// ServeMaster runs a one-shot fleet master on the listener until every
// s-point of the job has been computed by connected workers, then
// inverts with the same inverter configuration used to build the job.
// checkpointPath may be empty. The fleet (and the listener with it) is
// closed before returning, which dismisses the workers cleanly; for a
// resident master that survives many jobs, use NewFleet and
// Options.Backend instead.
func (m *Model) ServeMaster(ln net.Listener, job *Job, times []float64, checkpointPath string, opts *Options) (*Result, error) {
	var cache pipeline.Cache
	if checkpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(checkpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	// A one-shot master serves exactly this job, so mismatched workers
	// are rejected at the handshake (readably, on their own console)
	// instead of idling unrouted while the master waits forever.
	fleet := pipeline.NewFleet(ln, pipeline.FleetOptions{
		RequireFingerprint: job.ModelFP,
		RequireStates:      job.ModelStates,
	})
	defer fleet.Close()
	vectors, stats, err := fleet.Execute(job.Spec(), cache)
	if err != nil {
		return nil, err
	}
	return ReadRun(&VectorRun{Spec: job.Spec(), Vectors: vectors, Stats: stats},
		job.Sources, job.Weights, times, opts)
}

// WorkerOptions re-exports the pipeline worker tuning knobs: the
// worker's diagnostic name plus its observability hooks (structured
// logger, span tracer).
type WorkerOptions = pipeline.WorkerOptions

// RunWorker connects this model to a fleet master at addr and evaluates
// assignment batches until the master shuts down (nil return) or the
// connection fails. The handshake advertises the model's fingerprint
// and state count, so the master only routes this model's solves here.
func (m *Model) RunWorker(addr, name string, opts *Options) error {
	return m.RunWorkerWith(addr, WorkerOptions{Name: name}, opts)
}

// RunWorkerWith is RunWorker with the full worker option set — use it
// to attach a structured logger and a span tracer, so worker-side
// batches carry the trace IDs their masters stamped on run headers.
func (m *Model) RunWorkerWith(addr string, wopts WorkerOptions, opts *Options) error {
	model := m.ss.Model
	solverOpts := opts.solver()
	wm := pipeline.WorkerModel{
		Fingerprint: m.fingerprint,
		States:      m.NumStates(),
		Evaluator:   pipeline.NewSolverEvaluator(model, solverOpts),
		// Row-block shard constructor for wire v4 sharded solves: the
		// master assigns this worker rows [lo,hi) of the kernel and the
		// member exchanges only boundary sub-vector entries per sweep.
		// WorkerOptions.NoShard withholds the capability at handshake.
		NewShard: func(spec *pipeline.SolveSpec, lo, hi int) (passage.ShardMember, error) {
			return passage.NewShardSolver(model, solverOpts, lo, hi, spec.Targets)
		},
		// Planned variant (wire v4.1): the worker derives its own block
		// from the shared boundary-minimizing partition plan, so every
		// rev-1 member computes an identical placement without the master
		// ever holding the kernel. WorkerOptions.NoShardExt pins the
		// worker to plain rev-0 conduct.
		NewShardPlanned: func(spec *pipeline.SolveSpec, parts, part int) (passage.ShardMember, passage.ShardPlacement, error) {
			sv, pl, err := passage.NewPlannedShardSolver(model, solverOpts, parts, part, spec.Targets)
			if sv == nil || err != nil {
				return nil, pl, err // keep the interface nil for surplus parts
			}
			return sv, pl, err
		},
	}
	return pipeline.FleetWork(addr, []pipeline.WorkerModel{wm}, wopts)
}

// EulerPointsPerT exposes the s-point cost model of the default Euler
// inverter (the paper's n = k·m accounting for Table 2).
func EulerPointsPerT() int { return lt.DefaultEuler().PointsPerT() }

// String renders a Result compactly for CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("Result{%d points, %v}", len(r.Times), r.Stats)
}
