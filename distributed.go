package hydra

import (
	"fmt"
	"net"

	"hydra/internal/lt"
	"hydra/internal/pipeline"
)

// Job re-exports the pipeline job so masters and workers can be driven
// from the public API.
type Job = pipeline.Job

// RunStats re-exports the pipeline run statistics.
type RunStats = pipeline.RunStats

// Cache re-exports the pipeline point-cache contract: the store a run
// consults before evaluating transform points and feeds as results
// return. Long-running services layer a memory LRU over a disk
// checkpoint through this interface (see internal/server).
type Cache = pipeline.Cache

// Backend re-exports the pipeline execution contract: where a job's
// s-points get evaluated. Leave Options.Backend nil for the in-process
// pool; pass a *Fleet to execute on resident TCP workers.
type Backend = pipeline.Backend

// Fleet re-exports the resident TCP worker fleet — the Backend that
// serves jobs on persistent hydra-worker connections (wire protocol
// v2): workers join and leave freely, batches lost to dead workers are
// requeued, and one fleet serves every model its workers hold.
type Fleet = pipeline.Fleet

// FleetOptions re-exports the fleet tuning knobs.
type FleetOptions = pipeline.FleetOptions

// PointError re-exports the structured evaluation failure: which
// worker, which point index, and the evaluator's message.
type PointError = pipeline.PointError

// ErrHandshakeRejected re-exports the permanent handshake failure a
// fleet master answers with when a worker's protocol version or models
// are unacceptable. Reconnect loops give up on it (errors.Is) instead
// of redialing an unwinnable handshake.
var ErrHandshakeRejected = pipeline.ErrHandshakeRejected

// NewFleet starts a fleet master accepting workers on ln. Close it to
// release the listener and dismiss the workers.
func NewFleet(ln net.Listener, opts FleetOptions) *Fleet {
	return pipeline.NewFleet(ln, opts)
}

// NewPassageJob builds a distributed job for the passage density (or
// CDF when cdf is true) of a measure at the given times.
func (m *Model) NewPassageJob(name string, sources, targets []int, times []float64, cdf bool, opts *Options) (*Job, error) {
	q := pipeline.PassageDensity
	if cdf {
		q = pipeline.PassageCDF
	}
	return m.newJob(name, q, sources, targets, times, opts)
}

// NewTransientJob builds a distributed job for a transient measure.
func (m *Model) NewTransientJob(name string, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	return m.newJob(name, pipeline.TransientDist, sources, targets, times, opts)
}

func (m *Model) newJob(name string, q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	for _, t := range times {
		if !(t > 0) {
			return nil, fmt.Errorf("hydra: analysis times must be positive, got %v", t)
		}
	}
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{
		Name:        name,
		Quantity:    q,
		Sources:     src.States,
		Weights:     src.Weights,
		Targets:     targets,
		Points:      inv.Points(times),
		ModelFP:     m.fingerprint,
		ModelStates: m.NumStates(),
	}
	if err := job.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	return job, nil
}

// backend resolves where a job executes: opts.Backend when set (e.g. a
// Fleet), otherwise an in-process pool sized by opts.Workers whose
// evaluators run against this model.
func (m *Model) backend(opts *Options) Backend {
	if opts != nil && opts.Backend != nil {
		return opts.Backend
	}
	solverOpts := opts.solver()
	model := m.ss.Model
	return &pipeline.InProc{
		NewEvaluator: func() pipeline.Evaluator {
			return pipeline.NewSolverEvaluator(model, solverOpts)
		},
		Workers: opts.workers(),
	}
}

// RunJob executes a prepared job (from NewPassageJob or NewTransientJob)
// on the selected backend — opts.Backend, or the in-process worker pool
// when nil — and inverts the transform values at the given times. The
// job's s-points must have been built with the same inverter
// configuration opts selects — which NewPassageJob and NewTransientJob
// guarantee when handed the same opts.
//
// cache may be nil; when it is, opts.CheckpointPath (if set) is opened
// for the duration of the run. Passing a persistent cache instead is how
// a resident service reuses transform evaluations across requests: the
// run loads every point the cache already holds (reported as
// Stats.FromCache) and evaluates only the remainder.
func (m *Model) RunJob(job *Job, times []float64, cache Cache, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	if cache == nil && opts != nil && opts.CheckpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	values, stats, err := m.backend(opts).Execute(job, cache)
	if err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, values)
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: stats}, nil
}

// ServeMaster runs a one-shot fleet master on the listener until every
// s-point of the job has been computed by connected workers, then
// inverts with the same inverter configuration used to build the job.
// checkpointPath may be empty. The fleet (and the listener with it) is
// closed before returning, which dismisses the workers cleanly; for a
// resident master that survives many jobs, use NewFleet and
// Options.Backend instead.
func (m *Model) ServeMaster(ln net.Listener, job *Job, times []float64, checkpointPath string, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	var cache pipeline.Cache
	if checkpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(checkpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	// A one-shot master serves exactly this job, so mismatched workers
	// are rejected at the handshake (readably, on their own console)
	// instead of idling unrouted while the master waits forever.
	fleet := pipeline.NewFleet(ln, pipeline.FleetOptions{
		RequireFingerprint: job.ModelFP,
		RequireStates:      job.ModelStates,
	})
	defer fleet.Close()
	values, stats, err := fleet.Execute(job, cache)
	if err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, values)
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: stats}, nil
}

// RunWorker connects this model to a fleet master at addr and evaluates
// assignment batches until the master shuts down (nil return) or the
// connection fails. The handshake advertises the model's fingerprint
// and state count, so the master only routes this model's jobs here.
func (m *Model) RunWorker(addr, name string, opts *Options) error {
	wm := pipeline.WorkerModel{
		Fingerprint: m.fingerprint,
		States:      m.NumStates(),
		Evaluator:   pipeline.NewSolverEvaluator(m.ss.Model, opts.solver()),
	}
	return pipeline.FleetWork(addr, []pipeline.WorkerModel{wm}, pipeline.WorkerOptions{Name: name})
}

// EulerPointsPerT exposes the s-point cost model of the default Euler
// inverter (the paper's n = k·m accounting for Table 2).
func EulerPointsPerT() int { return lt.DefaultEuler().PointsPerT() }

// String renders a Result compactly for CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("Result{%d points, %v}", len(r.Times), r.Stats)
}
