package hydra

import (
	"fmt"
	"net"

	"hydra/internal/lt"
	"hydra/internal/pipeline"
)

// Job re-exports the pipeline job so masters and workers can be driven
// from the public API.
type Job = pipeline.Job

// RunStats re-exports the pipeline run statistics.
type RunStats = pipeline.RunStats

// Cache re-exports the pipeline point-cache contract: the store a run
// consults before evaluating transform points and feeds as results
// return. Long-running services layer a memory LRU over a disk
// checkpoint through this interface (see internal/server).
type Cache = pipeline.Cache

// NewPassageJob builds a distributed job for the passage density (or
// CDF when cdf is true) of a measure at the given times.
func (m *Model) NewPassageJob(name string, sources, targets []int, times []float64, cdf bool, opts *Options) (*Job, error) {
	q := pipeline.PassageDensity
	if cdf {
		q = pipeline.PassageCDF
	}
	return m.newJob(name, q, sources, targets, times, opts)
}

// NewTransientJob builds a distributed job for a transient measure.
func (m *Model) NewTransientJob(name string, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	return m.newJob(name, pipeline.TransientDist, sources, targets, times, opts)
}

func (m *Model) newJob(name string, q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	for _, t := range times {
		if !(t > 0) {
			return nil, fmt.Errorf("hydra: analysis times must be positive, got %v", t)
		}
	}
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{
		Name:     name,
		Quantity: q,
		Sources:  src.States,
		Weights:  src.Weights,
		Targets:  targets,
		Points:   inv.Points(times),
	}
	if err := job.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	return job, nil
}

// RunJob executes a prepared job (from NewPassageJob or NewTransientJob)
// on the in-process worker pool and inverts the transform values at the
// given times. The job's s-points must have been built with the same
// inverter configuration opts selects — which NewPassageJob and
// NewTransientJob guarantee when handed the same opts.
//
// cache may be nil; when it is, opts.CheckpointPath (if set) is opened
// for the duration of the run. Passing a persistent cache instead is how
// a resident service reuses transform evaluations across requests: the
// run loads every point the cache already holds (reported as
// Stats.FromCache) and evaluates only the remainder.
func (m *Model) RunJob(job *Job, times []float64, cache Cache, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	if cache == nil && opts != nil && opts.CheckpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	solverOpts := opts.solver()
	model := m.ss.Model
	values, stats, err := pipeline.Run(job, func() pipeline.Evaluator {
		return pipeline.NewSolverEvaluator(model, solverOpts)
	}, opts.workers(), cache)
	if err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, values)
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: stats}, nil
}

// ServeMaster runs the distributed master on the listener until every
// s-point of the job has been computed by connected workers, then
// inverts with the same inverter configuration used to build the job.
// checkpointPath may be empty.
func (m *Model) ServeMaster(ln net.Listener, job *Job, times []float64, checkpointPath string, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	var cache pipeline.Cache
	if checkpointPath != "" {
		ckpt, err := pipeline.OpenCheckpoint(checkpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		cache = ckpt
	}
	values, stats, err := pipeline.Serve(ln, job, cache, pipeline.MasterOptions{ModelStates: m.NumStates()})
	if err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, values)
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: stats}, nil
}

// RunWorker connects this model to a master at addr and evaluates
// assignments until the master completes. The worker must hold the same
// model as the master expects; the handshake verifies the state count.
func (m *Model) RunWorker(addr, name string, opts *Options) error {
	eval := pipeline.NewSolverEvaluator(m.ss.Model, opts.solver())
	return pipeline.Work(addr, eval, m.NumStates(), pipeline.WorkerOptions{Name: name})
}

// EulerPointsPerT exposes the s-point cost model of the default Euler
// inverter (the paper's n = k·m accounting for Table 2).
func EulerPointsPerT() int { return lt.DefaultEuler().PointsPerT() }

// String renders a Result compactly for CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("Result{%d points, %v}", len(r.Times), r.Stats)
}
