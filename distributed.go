package hydra

import (
	"fmt"
	"net"

	"hydra/internal/lt"
	"hydra/internal/pipeline"
)

// Job re-exports the pipeline job so masters and workers can be driven
// from the public API.
type Job = pipeline.Job

// RunStats re-exports the pipeline run statistics.
type RunStats = pipeline.RunStats

// NewPassageJob builds a distributed job for the passage density (or
// CDF when cdf is true) of a measure at the given times.
func (m *Model) NewPassageJob(name string, sources, targets []int, times []float64, cdf bool, opts *Options) (*Job, error) {
	q := pipeline.PassageDensity
	if cdf {
		q = pipeline.PassageCDF
	}
	return m.newJob(name, q, sources, targets, times, opts)
}

// NewTransientJob builds a distributed job for a transient measure.
func (m *Model) NewTransientJob(name string, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	return m.newJob(name, pipeline.TransientDist, sources, targets, times, opts)
}

func (m *Model) newJob(name string, q pipeline.Quantity, sources, targets []int, times []float64, opts *Options) (*Job, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	src, err := m.sourceWeights(sources)
	if err != nil {
		return nil, err
	}
	job := &pipeline.Job{
		Name:     name,
		Quantity: q,
		Sources:  src.States,
		Weights:  src.Weights,
		Targets:  targets,
		Points:   inv.Points(times),
	}
	if err := job.Validate(m.NumStates()); err != nil {
		return nil, err
	}
	return job, nil
}

// ServeMaster runs the distributed master on the listener until every
// s-point of the job has been computed by connected workers, then
// inverts with the same inverter configuration used to build the job.
// checkpointPath may be empty.
func (m *Model) ServeMaster(ln net.Listener, job *Job, times []float64, checkpointPath string, opts *Options) (*Result, error) {
	inv, err := opts.inverter()
	if err != nil {
		return nil, err
	}
	var ckpt *pipeline.Checkpoint
	if checkpointPath != "" {
		ckpt, err = pipeline.OpenCheckpoint(checkpointPath)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}
	values, stats, err := pipeline.Serve(ln, job, ckpt, pipeline.MasterOptions{ModelStates: m.NumStates()})
	if err != nil {
		return nil, err
	}
	f, err := inv.Invert(times, values)
	if err != nil {
		return nil, err
	}
	return &Result{Times: times, Values: f, Stats: stats}, nil
}

// RunWorker connects this model to a master at addr and evaluates
// assignments until the master completes. The worker must hold the same
// model as the master expects; the handshake verifies the state count.
func (m *Model) RunWorker(addr, name string, opts *Options) error {
	eval := pipeline.NewSolverEvaluator(m.ss.Model, opts.solver())
	return pipeline.Work(addr, eval, m.NumStates(), pipeline.WorkerOptions{Name: name})
}

// EulerPointsPerT exposes the s-point cost model of the default Euler
// inverter (the paper's n = k·m accounting for Table 2).
func EulerPointsPerT() int { return lt.DefaultEuler().PointsPerT() }

// String renders a Result compactly for CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("Result{%d points, %v}", len(r.Times), r.Stats)
}
