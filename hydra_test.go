package hydra_test

import (
	"math"
	"net"
	"path/filepath"
	"testing"

	"hydra"
)

const quickSpec = `
\model{
  \statevector{ \type{short}{idle, stage1, done} }
  \initial{ idle = 1; stage1 = 0; done = 0; }
  \transition{start}{
    \condition{idle > 0}
    \action{ next->idle = idle - 1; next->stage1 = stage1 + 1; }
    \sojourntimeLT{ expLT(2, s) }
  }
  \transition{finish}{
    \condition{stage1 > 0}
    \action{ next->stage1 = stage1 - 1; next->done = done + 1; }
    \sojourntimeLT{ expLT(5, s) }
  }
  \transition{reset}{
    \condition{done > 0}
    \action{ next->done = done - 1; next->idle = idle + 1; }
    \sojourntimeLT{ expLT(1, s) }
  }
}
\passage{
  \sourcecondition{idle == 1}
  \targetcondition{done == 1}
  \t_start{0.1} \t_stop{2.5} \t_points{6}
}
`

func TestLoadSpecPassageDensityClosedForm(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 3 {
		t.Fatalf("states = %d, want 3", m.NumStates())
	}
	ms := m.Measures()
	if len(ms) != 1 || ms[0].Kind != hydra.Passage {
		t.Fatalf("measures = %+v", ms)
	}
	r, err := m.PassageDensity(ms[0].Sources, ms[0].Targets, ms[0].Times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range r.Times {
		want := 10.0 / 3 * (math.Exp(-2*tt) - math.Exp(-5*tt))
		if math.Abs(r.Values[i]-want) > 1e-6 {
			t.Errorf("f(%v) = %v, want %v", tt, r.Values[i], want)
		}
	}
}

func TestPassageCDFAndQuantile(t *testing.T) {
	// Single exponential hop: F(t) = 1 − e^{−2t}; median = ln2/2.
	src := `
\model{
  \statevector{ \type{short}{a, b} }
  \initial{ a = 1; b = 0; }
  \transition{go}{ \condition{a > 0} \action{next->a = a-1; next->b = b+1;} \sojourntimeLT{expLT(2,s)} }
  \transition{back}{ \condition{b > 0} \action{next->b = b-1; next->a = a+1;} \sojourntimeLT{expLT(7,s)} }
}
`
	m, err := hydra.LoadSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.PassageCDF([]int{0}, []int{1}, []float64{0.2, 0.5, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range r.Times {
		want := 1 - math.Exp(-2*tt)
		if math.Abs(r.Values[i]-want) > 1e-6 {
			t.Errorf("F(%v) = %v, want %v", tt, r.Values[i], want)
		}
	}
	q, err := m.PassageQuantile([]int{0}, []int{1}, 0.5, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Ln2 / 2; math.Abs(q-want) > 1e-3 {
		t.Errorf("median = %v, want %v", q, want)
	}
}

func TestVotingSystem0MatchesTable1(t *testing.T) {
	m, err := hydra.VotingSystem(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2061 {
		t.Errorf("system 0 has %d states, want 2061", m.NumStates())
	}
	if m.PlaceIndex("p7") != 6 || m.PlaceIndex("nope") != -1 {
		t.Errorf("place indexing broken")
	}
}

func TestVotingAnalyticVsSimulation(t *testing.T) {
	// A scaled-down voting system keeps the integration test fast while
	// exercising the full §5.3 validation loop: analytic CDF vs
	// simulated walks for the failure-mode passage.
	m, err := hydra.VotingConfig(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p6, p7 := m.PlaceIndex("p6"), m.PlaceIndex("p7")
	targets := m.States(func(mk hydra.Marking) bool {
		return mk[p7] >= 2 || mk[p6] >= 1
	})
	if len(targets) == 0 {
		t.Fatal("no failure-mode states")
	}
	sources := []int{m.InitialState()}
	times := []float64{20, 60, 120, 240}
	cdf, err := m.PassageCDF(sources, targets, times, &hydra.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := m.SimulatePassage(sources, targets, &hydra.SimOptions{Replications: 20000, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Interpolate the analytic CDF over the sample range via the four
	// fixed points: compare pointwise against the empirical CDF.
	for i, tt := range times {
		var below int
		for _, s := range samples {
			if s <= tt {
				below++
			}
		}
		emp := float64(below) / float64(len(samples))
		if math.Abs(cdf.Values[i]-emp) > 0.02 {
			t.Errorf("F(%v): analytic %v vs simulated %v", tt, cdf.Values[i], emp)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m, err := hydra.VotingConfig(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] == 2 })
	if len(targets) == 0 {
		t.Fatal("no target states")
	}
	sources := []int{m.InitialState()}
	ssProb, err := m.SteadyStateProbability(targets)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.TransientDistribution(sources, targets, []float64{2000, 4000}, &hydra.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tr.Values {
		if math.Abs(v-ssProb) > 0.01*(1+ssProb) {
			t.Errorf("T(%v) = %v has not converged to steady state %v", tr.Times[i], v, ssProb)
		}
	}
}

func TestCheckpointThroughFacade(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "facade.ckpt")
	opts := &hydra.Options{CheckpointPath: ck}
	ms := m.Measures()[0]
	r1, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.FromCache != 0 {
		t.Errorf("first run cache hits = %d", r1.Stats.FromCache)
	}
	r2, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Evaluated != 0 {
		t.Errorf("second run evaluated %d points, want 0 (checkpoint)", r2.Stats.Evaluated)
	}
	for i := range r1.Values {
		if r1.Values[i] != r2.Values[i] {
			t.Fatalf("values differ across checkpointed runs")
		}
	}
}

func TestDistributedMasterWorker(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ms := m.Measures()[0]
	job, err := m.NewPassageJob("dist-test", ms.Sources, ms.Targets, ms.Times, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			done <- m.RunWorker(ln.Addr().String(), "w", nil)
		}(w)
	}
	r, err := m.ServeMaster(ln, job, ms.Times, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
	ref, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Values {
		if math.Abs(r.Values[i]-ref.Values[i]) > 1e-12 {
			t.Fatalf("distributed value %d differs: %v vs %v", i, r.Values[i], ref.Values[i])
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PassageDensity([]int{0}, []int{2}, []float64{1}, &hydra.Options{Method: "simpson"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := m.PassageDensity([]int{0}, []int{2}, []float64{-1}, nil); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := m.PassageDensity(nil, []int{2}, []float64{1}, nil); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := m.PassageQuantile([]int{0}, []int{2}, 1.5, 1, nil); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestLaguerreMethodThroughFacade(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ms := m.Measures()[0]
	eu, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, &hydra.Options{Method: "euler"})
	if err != nil {
		t.Fatal(err)
	}
	la, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, &hydra.Options{Method: "laguerre"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range eu.Values {
		if math.Abs(eu.Values[i]-la.Values[i]) > 1e-5 {
			t.Errorf("t=%v: euler %v vs laguerre %v", eu.Times[i], eu.Values[i], la.Values[i])
		}
	}
}

func TestPassageMomentsThroughFacade(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	// idle→done = exp(2) then exp(5): mean 0.7, var 0.29.
	mean, variance, err := m.PassageMoments([]int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.7) > 1e-9 || math.Abs(variance-0.29) > 1e-9 {
		t.Errorf("moments = %v, %v; want 0.7, 0.29", mean, variance)
	}
	// Against the simulation estimator.
	samples, err := m.SimulatePassage([]int{0}, []int{2}, &hydra.SimOptions{Replications: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sm, sd := hydra.SampleStats(samples)
	if math.Abs(sm-mean) > 0.02 || math.Abs(sd*sd-variance) > 0.03 {
		t.Errorf("simulated %v/%v vs exact %v/%v", sm, sd*sd, mean, variance)
	}
}

func TestQuantileConsistentWithCDF(t *testing.T) {
	// F(quantile(p)) ≈ p across several probabilities.
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
		q, err := m.PassageQuantile([]int{0}, []int{2}, p, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.PassageCDF([]int{0}, []int{2}, []float64{q}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Values[0]-p) > 2e-3 {
			t.Errorf("F(quantile(%v)=%v) = %v", p, q, r.Values[0])
		}
	}
}

func TestTalbotThroughFacade(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ms := m.Measures()[0]
	eu, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := m.PassageDensity(ms.Sources, ms.Targets, ms.Times, &hydra.Options{Method: "talbot"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range eu.Values {
		if math.Abs(eu.Values[i]-tb.Values[i]) > 1e-6 {
			t.Errorf("t=%v: euler %v vs talbot %v", eu.Times[i], eu.Values[i], tb.Values[i])
		}
	}
	// Talbot's point budget beats Euler's for this job.
	if tb.Stats.Evaluated >= eu.Stats.Evaluated {
		t.Errorf("talbot evaluated %d points, euler %d", tb.Stats.Evaluated, eu.Stats.Evaluated)
	}
}

func TestIntraPointWorkersThroughFacade(t *testing.T) {
	m, err := hydra.VotingSystem(0)
	if err != nil {
		t.Fatal(err)
	}
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	ts := []float64{20, 30}
	serial, err := m.PassageDensity([]int{0}, targets, ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.PassageDensity([]int{0}, targets, ts, &hydra.Options{
		Solver: passageOptionsIntra(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Values {
		if math.Abs(serial.Values[i]-par.Values[i]) > 1e-12 {
			t.Errorf("t=%v: serial %v vs intra-parallel %v", ts[i], serial.Values[i], par.Values[i])
		}
	}
}

func TestAutoMethodSelectsPerSmoothness(t *testing.T) {
	// Smooth (all-exponential) passage: auto must match Laguerre (and
	// hence Euler) closely.
	smooth, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ms := smooth.Measures()[0]
	auto, err := smooth.PassageDensity(ms.Sources, ms.Targets, ms.Times, &hydra.Options{Method: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := smooth.PassageDensity(ms.Sources, ms.Targets, ms.Times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Values {
		if math.Abs(auto.Values[i]-ref.Values[i]) > 1e-5 {
			t.Errorf("smooth auto at t=%v: %v vs %v", ref.Times[i], auto.Values[i], ref.Values[i])
		}
	}

	// Discontinuous: a deterministic delay. Auto must fall back to Euler
	// and stay accurate where Laguerre alone would ring.
	det := `
\model{
  \statevector{ \type{short}{a, b} }
  \initial{ a = 1; b = 0; }
  \transition{go}{ \condition{a > 0} \action{next->a = a-1; next->b = b+1;} \sojourntimeLT{detLT(1, s) } }
  \transition{back}{ \condition{b > 0} \action{next->b = b-1; next->a = a+1;} \sojourntimeLT{expLT(1,s)} }
}
`
	dm, err := hydra.LoadSpec(det)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{0.5, 2}
	cdfAuto, err := dm.PassageCDF([]int{0}, []int{1}, ts, &hydra.Options{Method: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	// True CDF of det(1): step at t=1.
	wants := []float64{0, 1}
	for i := range ts {
		if math.Abs(cdfAuto.Values[i]-wants[i]) > 5e-3 {
			t.Errorf("det auto CDF(%v) = %v, want %v", ts[i], cdfAuto.Values[i], wants[i])
		}
	}
}

func TestStateMeasureThroughFacade(t *testing.T) {
	src := quickSpec + `
\statemeasure{busy_frac}{ \condition{stage1 > 0} }
`
	m, err := hydra.LoadSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	sms := m.StateMeasures()
	if len(sms) != 1 || sms[0].Name != "busy_frac" {
		t.Fatalf("state measures = %+v", sms)
	}
	got, err := m.SteadyStateProbability(sms[0].States)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle through exp(2), exp(5), exp(1): fraction of time in stage1 is
	// (1/5)/(1/2 + 1/5 + 1) = 0.2/1.7.
	want := 0.2 / 1.7
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P(stage1>0) = %v, want %v", got, want)
	}
}
