package hydra_test

import (
	"math"
	"testing"

	"hydra"
)

// TestMultiSourceVariantsMatchSingleSourceRuns checks the public
// multi-source entry points: one solve's results must equal what the
// per-source entry points compute independently, for density, CDF and
// transient measures.
func TestMultiSourceVariantsMatchSingleSourceRuns(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.4, 0.9, 1.6}
	sourceSets := [][]int{{0}, {1}}
	targets := []int{2}

	t.Run("density", func(t *testing.T) {
		multi, err := m.PassageDensityMulti(sourceSets, targets, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(multi) != len(sourceSets) {
			t.Fatalf("got %d results for %d source sets", len(multi), len(sourceSets))
		}
		for k, sources := range sourceSets {
			single, err := m.PassageDensity(sources, targets, times, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range times {
				if math.Abs(multi[k].Values[i]-single.Values[i]) > 1e-9 {
					t.Errorf("source set %d, t=%v: multi %v vs single %v",
						k, times[i], multi[k].Values[i], single.Values[i])
				}
			}
		}
	})

	t.Run("cdf", func(t *testing.T) {
		multi, err := m.PassageCDFMulti(sourceSets, targets, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		single, err := m.PassageCDF(sourceSets[1], targets, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range times {
			if math.Abs(multi[1].Values[i]-single.Values[i]) > 1e-9 {
				t.Errorf("t=%v: multi CDF %v vs single %v", times[i], multi[1].Values[i], single.Values[i])
			}
		}
	})

	t.Run("transient", func(t *testing.T) {
		multi, err := m.TransientDistributionMulti(sourceSets, []int{0}, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		single, err := m.TransientDistribution(sourceSets[0], []int{0}, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range times {
			if math.Abs(multi[0].Values[i]-single.Values[i]) > 1e-9 {
				t.Errorf("t=%v: multi transient %v vs single %v", times[i], multi[0].Values[i], single.Values[i])
			}
		}
	})
}

// TestRunSpecServesEverySourceAsDotProducts drives the vector API
// directly: one RunSpec, many ReadRun calls, against the chain's known
// closed forms.
func TestRunSpecServesEverySourceAsDotProducts(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.5, 1.2}
	spec, err := m.NewPassageSpec("vector-api", []int{2}, times, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := m.RunSpec(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Stats.Evaluated != len(spec.Points) {
		t.Fatalf("evaluated %d points, want %d", vr.Stats.Evaluated, len(spec.Points))
	}

	// Source 0: two-hop convolution density.
	r0, err := hydra.ReadRun(vr, []int{0}, []float64{1}, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := 10.0 / 3 * (math.Exp(-2*tt) - math.Exp(-5*tt))
		if math.Abs(r0.Values[i]-want) > 1e-6 {
			t.Errorf("source 0 f(%v) = %v, want %v", tt, r0.Values[i], want)
		}
	}
	// Source 1: single exponential hop.
	r1, err := hydra.ReadRun(vr, []int{1}, []float64{1}, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := 5 * math.Exp(-5*tt)
		if math.Abs(r1.Values[i]-want) > 1e-6 {
			t.Errorf("source 1 f(%v) = %v, want %v", tt, r1.Values[i], want)
		}
	}
	// A 50/50 weighting is the matching mixture — linearity of the read.
	rmix, err := hydra.ReadRun(vr, []int{0, 1}, []float64{0.5, 0.5}, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		want := 0.5*r0.Values[i] + 0.5*r1.Values[i]
		if math.Abs(rmix.Values[i]-want) > 1e-9 {
			t.Errorf("mixture f(%v) = %v, want %v", times[i], rmix.Values[i], want)
		}
	}

	// Bad weightings are rejected at read time.
	if _, err := hydra.ReadRun(vr, []int{0}, []float64{0}, times, nil); err == nil {
		t.Error("all-zero weighting accepted by ReadRun")
	}
	if _, err := hydra.ReadRun(vr, []int{99}, []float64{1}, times, nil); err == nil {
		t.Error("out-of-range source accepted by ReadRun")
	}
}

// TestPassageQuantileReusedBackendMatchesCDF sanity-checks the
// prepared-backend quantile path against the CDF it bisects: the median
// of the two-hop passage.
func TestPassageQuantileReusedBackendMatchesCDF(t *testing.T) {
	m, err := hydra.LoadSpec(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.PassageQuantile([]int{0}, []int{2}, 0.5, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.PassageCDF([]int{0}, []int{2}, []float64{q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Values[0]-0.5) > 1e-3 {
		t.Errorf("F(quantile) = %v, want 0.5 (q = %v)", r.Values[0], q)
	}
}
