package hydra_test

import "hydra/internal/passage"

// passageOptionsIntra builds solver options with intra-point parallelism
// for facade tests.
func passageOptionsIntra(w int) passage.Options {
	return passage.Options{IntraPointWorkers: w}
}
