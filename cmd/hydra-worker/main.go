// Command hydra-worker is the worker side of the distributed analysis
// pipeline (§4): it builds the model locally (workers never receive
// matrices over the network — only s-values and results travel), then
// connects to a master and evaluates assigned s-point batches until the
// master shuts down.
//
// The worker must be started with the same model the master serves; the
// handshake advertises the model's fingerprint and state count so the
// master routes only matching jobs here (wire protocol v3).
//
// Usage:
//
//	hydra-worker -spec model.dnamaca -master host:9441 [-name node7]
//	hydra-worker -spec model.dnamaca -master host:9441 -reconnect
//
// Against a one-shot hydra-master, run without -reconnect: the worker
// exits when the job's fleet closes. Against a resident hydra-serve
// fleet, -reconnect keeps the worker in the fleet across service
// restarts and network blips, redialing with exponential backoff. A
// rejected handshake (protocol version mismatch, unwanted model) is
// permanent and exits the worker even under -reconnect.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"hydra"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys  = flag.Int("voting", -1, "built-in voting system 0-5")
		master     = flag.String("master", "", "master address host:port")
		name       = flag.String("name", hostname(), "worker name shown in diagnostics")
		reconnect  = flag.Bool("reconnect", false, "redial the master with exponential backoff when the connection drops")
		backoffMax = flag.Duration("backoff-max", 30*time.Second, "upper bound on the reconnect backoff")
	)
	flag.Parse()
	if *master == "" {
		fatal(fmt.Errorf("-master address is required"))
	}
	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra-worker %s: model %s has %d states, connecting to %s\n",
		*name, model.Fingerprint(), model.NumStates(), *master)

	backoff := time.Second
	for {
		start := time.Now()
		err := model.RunWorker(*master, *name, nil)
		// A session that lasted a while was healthy; restart the backoff
		// so a mid-job blip redials promptly.
		if time.Since(start) > time.Minute {
			backoff = time.Second
		}
		switch {
		case err == nil && !*reconnect:
			// The master dismissed the fleet cleanly: the one-shot job
			// is done.
			fmt.Fprintf(os.Stderr, "hydra-worker %s: master closed the fleet, exiting\n", *name)
			return
		case err == nil:
			// A clean dismissal under -reconnect means the service shut
			// down (a restart, usually): stay resident and rejoin when it
			// comes back.
			fmt.Fprintf(os.Stderr, "hydra-worker %s: master closed the fleet — reconnecting in %v\n", *name, backoff)
		case errors.Is(err, hydra.ErrHandshakeRejected):
			// A rejection (version mismatch, unwanted model) is permanent
			// for this pair of binaries; redialing can never succeed.
			fatal(err)
		case !*reconnect:
			fatal(err)
		default:
			fmt.Fprintf(os.Stderr, "hydra-worker %s: %v — reconnecting in %v\n", *name, err, backoff)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > *backoffMax {
			backoff = *backoffMax
		}
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-worker:", err)
	os.Exit(1)
}
