// Command hydra-worker is the worker side of the distributed analysis
// pipeline (§4): it builds the model locally (workers never receive
// matrices over the network — only s-values and results travel), then
// connects to a hydra-master and evaluates assigned s-points until the
// job completes.
//
// The worker must be started with the same model the master serves; the
// handshake cross-checks the state count.
//
// Usage:
//
//	hydra-worker -spec model.dnamaca -master host:9441 [-name node7]
package main

import (
	"flag"
	"fmt"
	"os"

	"hydra"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys = flag.Int("voting", -1, "built-in voting system 0-5")
		master    = flag.String("master", "", "master address host:port")
		name      = flag.String("name", hostname(), "worker name shown in diagnostics")
	)
	flag.Parse()
	if *master == "" {
		fatal(fmt.Errorf("-master address is required"))
	}
	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra-worker %s: model has %d states, connecting to %s\n",
		*name, model.NumStates(), *master)
	if err := model.RunWorker(*master, *name, nil); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra-worker %s: job complete\n", *name)
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-worker:", err)
	os.Exit(1)
}
