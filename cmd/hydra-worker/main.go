// Command hydra-worker is the worker side of the distributed analysis
// pipeline (§4): it builds the model locally (workers never receive
// matrices over the network — only s-values and results travel), then
// connects to a master and evaluates assigned s-point batches until the
// master shuts down.
//
// The worker must be started with the same model the master serves; the
// handshake advertises the model's fingerprint and state count so the
// master routes only matching jobs here (wire protocol v4).
//
// Usage:
//
//	hydra-worker -spec model.dnamaca -master host:9441 [-name node7]
//	hydra-worker -spec model.dnamaca -master host:9441 -reconnect
//
// Besides whole s-point batches, a v4 worker can hold one row block of
// a sharded solve, exchanging boundary sub-vector entries with its
// sibling workers through the master each sweep; -shard=false withholds
// that capability at the handshake, keeping the worker batch-only.
//
// Against a one-shot hydra-master, run without -reconnect: the worker
// exits when the job's fleet closes. Against a resident hydra-serve
// fleet, -reconnect keeps the worker in the fleet across service
// restarts and network blips, redialing with exponential backoff. A
// rejected handshake (protocol version mismatch, unwanted model) is
// permanent and exits the worker even under -reconnect.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"hydra"
	"hydra/internal/obs"
	"hydra/internal/pipeline"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys  = flag.Int("voting", -1, "built-in voting system 0-5")
		master     = flag.String("master", "", "master address host:port")
		name       = flag.String("name", hostname(), "worker name shown in diagnostics")
		reconnect  = flag.Bool("reconnect", false, "redial the master with exponential backoff when the connection drops")
		backoffMax = flag.Duration("backoff-max", 30*time.Second, "upper bound on the reconnect backoff")
		debugAddr  = flag.String("pprof", "", "serve /metrics and /debug/pprof/ on this address (e.g. :9442); empty disables")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		warm       = flag.Bool("warm", true, "warm-start iterative solves from the previous s-point of a contour batch")
		shard      = flag.Bool("shard", true, "offer to hold row blocks of sharded solves (wire v4); false serves whole-point batches only")
		shardExt   = flag.Bool("shard-ext", true, "announce the v4.1 shard extensions (planned boundary-minimizing blocks, overlapped halo exchange, multi-sweep batching); false pins the worker to plain v4 lock-step conduct")
	)
	flag.Parse()
	if *master == "" {
		fatal(fmt.Errorf("-master address is required"))
	}
	var logHandler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(logHandler).With("component", "hydra-worker", "worker", *name)
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", obs.Handler(obs.Default))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}
	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	logger.Info("starting",
		"model", model.Fingerprint(), "states", model.NumStates(),
		"master", *master, "wire_version", pipeline.ProtocolVersion, "reconnect", *reconnect)

	wopts := hydra.WorkerOptions{Name: *name, Logger: logger, Tracer: obs.DefaultTracer, NoShard: !*shard, NoShardExt: !*shardExt}
	opts := &hydra.Options{}
	opts.Solver.WarmStart = *warm
	backoff := time.Second
	for {
		start := time.Now()
		err := model.RunWorkerWith(*master, wopts, opts)
		// A session that lasted a while was healthy; restart the backoff
		// so a mid-job blip redials promptly.
		if time.Since(start) > time.Minute {
			backoff = time.Second
		}
		switch {
		case err == nil && !*reconnect:
			// The master dismissed the fleet cleanly: the one-shot job
			// is done.
			logger.Info("master closed the fleet, exiting")
			return
		case err == nil:
			// A clean dismissal under -reconnect means the service shut
			// down (a restart, usually): stay resident and rejoin when it
			// comes back.
			logger.Info("master closed the fleet, staying resident", "backoff", backoff)
		case errors.Is(err, hydra.ErrHandshakeRejected):
			// A rejection (version mismatch, unwanted model) is permanent
			// for this pair of binaries; redialing can never succeed.
			fatal(err)
		case !*reconnect:
			fatal(err)
		default:
			logger.Warn("connection lost", "error", err, "backoff", backoff)
		}
		pipeline.WorkerReconnects.Inc()
		time.Sleep(backoff)
		backoff *= 2
		if backoff > *backoffMax {
			backoff = *backoffMax
		}
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-worker:", err)
	os.Exit(1)
}
