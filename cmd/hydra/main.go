// Command hydra runs the semi-Markov passage-time/transient analysis
// pipeline on a model specification: it generates the state space,
// evaluates the requested measures and prints (t, value) series as CSV.
//
// Usage:
//
//	hydra -spec model.dnamaca [-measure 1] [-workers 4] [-checkpoint file]
//	hydra -voting 0 ...                       (built-in Table 1 systems)
//	hydra -spec model.dnamaca -quantile 0.99  (response-time quantile)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hydra"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys  = flag.Int("voting", -1, "built-in voting system 0-5 (alternative to -spec)")
		measureIdx = flag.Int("measure", 0, "measure block to run (1-based; 0 = all)")
		workers    = flag.Int("workers", runtime.NumCPU(), "in-process worker count")
		checkpoint = flag.String("checkpoint", "", "checkpoint file for s-point results")
		method     = flag.String("method", "", "override inversion method: euler or laguerre")
		quantile   = flag.Float64("quantile", 0, "also report the p-quantile of each passage measure")
		statsFlag  = flag.Bool("stats", false, "print pipeline statistics to stderr")
	)
	flag.Parse()

	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra: model has %d states\n", model.NumStates())

	measures := model.Measures()
	if len(measures) == 0 && len(model.StateMeasures()) == 0 {
		fatal(fmt.Errorf("the model defines no \\passage, \\transient or \\statemeasure blocks; add measures to the specification"))
	}
	selected := measures
	if *measureIdx > 0 {
		if *measureIdx > len(measures) {
			fatal(fmt.Errorf("measure %d requested but the model defines %d", *measureIdx, len(measures)))
		}
		selected = measures[*measureIdx-1 : *measureIdx]
	}

	fmt.Println("measure,kind,t,value")
	for _, ms := range selected {
		opts := &hydra.Options{Workers: *workers, CheckpointPath: *checkpoint, Method: ms.Method}
		if *method != "" {
			opts.Method = *method
		}
		var r *hydra.Result
		var kind string
		switch ms.Kind {
		case hydra.Passage:
			kind = "density"
			r, err = model.PassageDensity(ms.Sources, ms.Targets, ms.Times, opts)
		case hydra.Transient:
			kind = "transient"
			r, err = model.TransientDistribution(ms.Sources, ms.Targets, ms.Times, opts)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", ms.Name, err))
		}
		for i := range r.Times {
			fmt.Printf("%s,%s,%g,%g\n", ms.Name, kind, r.Times[i], r.Values[i])
		}
		if *statsFlag && r.Stats != nil {
			fmt.Fprintf(os.Stderr, "hydra: %s: %d evaluated, %d cached, %v wall\n",
				ms.Name, r.Stats.Evaluated, r.Stats.FromCache, r.Stats.WallTime)
		}
		if *quantile > 0 && ms.Kind == hydra.Passage {
			hint := ms.Times[len(ms.Times)-1] / 2
			q, err := model.PassageQuantile(ms.Sources, ms.Targets, *quantile, hint, opts)
			if err != nil {
				fatal(fmt.Errorf("%s quantile: %w", ms.Name, err))
			}
			fmt.Printf("%s,quantile-%g,%g,%g\n", ms.Name, *quantile, q, *quantile)
		}
	}
	for _, sm := range model.StateMeasures() {
		p, err := model.SteadyStateProbability(sm.States)
		if err != nil {
			fatal(fmt.Errorf("statemeasure %s: %w", sm.Name, err))
		}
		fmt.Printf("%s,steadystate,0,%g\n", sm.Name, p)
	}
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N (try -h)")
	}
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "hydra") {
		msg = "hydra: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
