// Command hydra-master runs the master side of the distributed analysis
// pipeline (§4): it computes the s-points the inverter demands, serves
// them to hydra-worker processes over TCP (a one-shot fleet speaking
// wire protocol v4 — batched assignments, fingerprint-checked
// handshake), checkpoints every returned value, and performs the final
// inversion when all values are in. Workers may join mid-run; a worker
// that dies has its in-flight batch requeued for the others.
//
// The master holds the model only to resolve the measure's source and
// target sets; the numerical work happens on the workers.
//
// Usage:
//
//	hydra-master -spec model.dnamaca -measure 1 -listen :9441 -checkpoint run.ckpt
//	hydra-worker -spec model.dnamaca -master host:9441   (on each worker node)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"hydra"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys  = flag.Int("voting", -1, "built-in voting system 0-5")
		measureIdx = flag.Int("measure", 1, "measure block to serve (1-based)")
		listen     = flag.String("listen", ":9441", "address to accept workers on")
		checkpoint = flag.String("checkpoint", "", "checkpoint file (resume-safe)")
		method     = flag.String("method", "", "override inversion method")
	)
	flag.Parse()

	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	measures := model.Measures()
	if *measureIdx < 1 || *measureIdx > len(measures) {
		fatal(fmt.Errorf("measure %d requested but the model defines %d", *measureIdx, len(measures)))
	}
	ms := measures[*measureIdx-1]
	opts := &hydra.Options{Method: ms.Method}
	if *method != "" {
		opts.Method = *method
	}

	var job *hydra.Job
	switch ms.Kind {
	case hydra.Passage:
		job, err = model.NewPassageJob(ms.Name, ms.Sources, ms.Targets, ms.Times, false, opts)
	case hydra.Transient:
		job, err = model.NewTransientJob(ms.Name, ms.Sources, ms.Targets, ms.Times, opts)
	}
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra-master: %d states, %d s-points, listening on %s\n",
		model.NumStates(), len(job.Points), ln.Addr())

	r, err := model.ServeMaster(ln, job, ms.Times, *checkpoint, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hydra-master: %d evaluated, %d cached, %d workers, %v wall\n",
		r.Stats.Evaluated, r.Stats.FromCache, r.Stats.Workers, r.Stats.WallTime)
	fmt.Println("measure,t,value")
	for i := range r.Times {
		fmt.Printf("%s,%g,%g\n", ms.Name, r.Times[i], r.Values[i])
	}
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-master:", err)
	os.Exit(1)
}
