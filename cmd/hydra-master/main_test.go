package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadModelSelection(t *testing.T) {
	if _, err := loadModel("", -1); err == nil {
		t.Error("no model source accepted")
	}
	if _, err := loadModel("x.dnamaca", 0); err == nil {
		t.Error("both -spec and -voting accepted")
	}
	if _, err := loadModel("", 9); err == nil {
		t.Error("unknown voting system accepted")
	}
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.dnamaca"), -1); err == nil {
		t.Error("missing spec file accepted")
	}
	// A real spec file loads.
	path := filepath.Join(t.TempDir(), "ok.dnamaca")
	spec := `\model{ \statevector{ \type{short}{a, b} } \initial{a=1; b=0;}
	  \transition{f}{\condition{a>0}\action{next->a=a-1; next->b=b+1;}\sojourntimeLT{expLT(1,s)}}
	  \transition{g}{\condition{b>0}\action{next->b=b-1; next->a=a+1;}\sojourntimeLT{expLT(2,s)}}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModel(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Errorf("states = %d, want 2", m.NumStates())
	}
	m2, err := loadModel("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumStates() != 2061 {
		t.Errorf("voting system 0 states = %d", m2.NumStates())
	}
}
