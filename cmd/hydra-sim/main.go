// Command hydra-sim estimates the same measures as hydra by discrete-
// event simulation — the validation path of §5.3. For passage measures
// it prints a histogram density (plus summary quantiles on stderr); for
// transient measures it prints point estimates at the measure's t-grid.
//
// Usage:
//
//	hydra-sim -spec model.dnamaca -measure 1 -reps 100000 -seed 1 -bins 40
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hydra"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "extended-DNAmaca model specification file")
		votingSys  = flag.Int("voting", -1, "built-in voting system 0-5")
		measureIdx = flag.Int("measure", 1, "measure block to simulate (1-based)")
		reps       = flag.Int("reps", 100000, "replications")
		seed       = flag.Int64("seed", 1, "random seed")
		bins       = flag.Int("bins", 40, "histogram bins for passage densities")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel simulation goroutines")
	)
	flag.Parse()

	model, err := loadModel(*specPath, *votingSys)
	if err != nil {
		fatal(err)
	}
	measures := model.Measures()
	if *measureIdx < 1 || *measureIdx > len(measures) {
		fatal(fmt.Errorf("measure %d requested but the model defines %d", *measureIdx, len(measures)))
	}
	ms := measures[*measureIdx-1]
	opts := &hydra.SimOptions{Replications: *reps, Seed: *seed, Workers: *workers}

	switch ms.Kind {
	case hydra.Passage:
		samples, err := model.SimulatePassage(ms.Sources, ms.Targets, opts)
		if err != nil {
			fatal(err)
		}
		mean, sd := hydra.SampleStats(samples)
		fmt.Fprintf(os.Stderr, "hydra-sim: %s: mean=%.4g sd=%.4g q50=%.4g q95=%.4g q99=%.4g\n",
			ms.Name, mean, sd,
			hydra.SampleQuantile(samples, 0.5),
			hydra.SampleQuantile(samples, 0.95),
			hydra.SampleQuantile(samples, 0.99))
		lo, hi := ms.Times[0], ms.Times[len(ms.Times)-1]
		centers, density, err := hydra.HistogramDensity(samples, *bins, lo, hi)
		if err != nil {
			fatal(err)
		}
		fmt.Println("measure,t,density")
		for i := range centers {
			fmt.Printf("%s,%g,%g\n", ms.Name, centers[i], density[i])
		}
	case hydra.Transient:
		values, err := model.SimulateTransient(ms.Sources, ms.Targets, ms.Times, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("measure,t,probability")
		for i := range ms.Times {
			fmt.Printf("%s,%g,%g\n", ms.Name, ms.Times[i], values[i])
		}
	}
}

func loadModel(specPath string, votingSys int) (*hydra.Model, error) {
	switch {
	case specPath != "" && votingSys >= 0:
		return nil, fmt.Errorf("use either -spec or -voting, not both")
	case specPath != "":
		return hydra.LoadSpecFile(specPath)
	case votingSys >= 0:
		return hydra.VotingSystem(votingSys)
	default:
		return nil, fmt.Errorf("a model is required: -spec file or -voting N")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-sim:", err)
	os.Exit(1)
}
