// Command hydra-bench regenerates every table and figure of the paper's
// evaluation section and prints the same rows/series the paper reports.
//
// Experiments:
//
//	table1   state-space sizes for voting systems 0-5 (exact match)
//	table2   distributed scalability: time/speedup/efficiency vs workers
//	fleet    the same scalability over a real TCP worker fleet (v3
//	         protocol; -json writes the rows for trend tracking)
//	vector   multi-source workload: K source weightings over one
//	         (model, targets, times) query — scalar replay (K solves)
//	         vs the vector engine (one solve + K dot-product reads);
//	         -json writes the rows for trend tracking
//	obs      instrumentation overhead: the vector solve with the
//	         observability instruments enabled vs disabled; -json
//	         writes the datapoint for trend tracking
//	resident prepared-model reuse: per-point latency of one warm,
//	         contour-ordered evaluator vs a fresh evaluator per
//	         s-point; -json writes the trajectory for trend tracking
//	shard    sharded vs monolithic fleet solves at equal worker
//	         counts: wire v4 row-block sharding against whole-point
//	         farming, with measured and cluster-projected wall times
//	         and the differential max|Δ|; -json writes the rows for
//	         trend tracking
//	serve    served quantiles: K-level batched requests answered from
//	         one resident CDF surface vs per-level bisection searches,
//	         over the real HTTP API with concurrent clients; -json
//	         writes the datapoint for trend tracking
//	fig4     voter passage density, analytic vs simulation
//	fig5     passage CDF and the 98.58% response-time quantile
//	fig6     failure-mode passage density, analytic vs simulation
//	fig7     transient state distribution vs steady state
//	ablations iterative-vs-direct, euler-vs-laguerre, interning, checkpoint
//
// Usage:
//
//	hydra-bench -exp all            (defaults sized for a laptop)
//	hydra-bench -exp table1 -full   (adds the 1.14M-state systems)
//	hydra-bench -exp table2 -full   (uses the paper's system 1 workload)
//	hydra-bench -exp fleet -json BENCH_fleet.json
//	hydra-bench -exp vector -json BENCH_vector.json
//	hydra-bench -exp resident -json BENCH_resident.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hydra/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|fleet|vector|obs|resident|shard|serve|fig4|fig5|fig6|fig7|ablations|all")
		full     = flag.Bool("full", false, "paper-scale workloads (slower)")
		reps     = flag.Int("reps", 0, "simulation replications override")
		jsonPath = flag.String("json", "", "also write the experiment's rows as JSON to this file (fleet, vector, obs, resident)")
	)
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error { return table1(*full) })
	run("table2", func() error { return table2(*full) })
	run("fleet", func() error { return fleetScaling(*full, *jsonPath) })
	run("vector", func() error { return vectorScaling(*full, *jsonPath) })
	run("obs", func() error { return obsOverhead(*full, *jsonPath) })
	run("resident", func() error { return residentReuse(*full, *jsonPath) })
	run("shard", func() error { return shardScaling(*full, *jsonPath) })
	run("serve", func() error { return serveBench(*full, *jsonPath) })
	run("fig4", func() error { return fig4(*full, *reps) })
	run("fig5", func() error { return fig5(*full) })
	run("fig6", func() error { return fig6(*reps) })
	run("fig7", func() error { return fig7() })
	run("ablations", ablations)
}

func table1(full bool) error {
	rows, err := experiments.Table1(full)
	if err != nil {
		return err
	}
	fmt.Println("system,CC,MM,NN,states,paper,match,seconds")
	for _, r := range rows {
		fmt.Printf("%d,%d,%d,%d,%d,%d,%v,%.3f\n",
			r.System, r.CC, r.MM, r.NN, r.States, r.Want, r.States == r.Want, r.Seconds)
	}
	return nil
}

func table2(full bool) error {
	cfg := experiments.Table2Config{}
	if full {
		// The paper's workload: system 1, 5 t-points, 165 s-points.
		cfg = experiments.Table2Config{CC: 60, MM: 25, NN: 4, TPoints: 5}
	}
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Println("mode,workers,seconds,speedup,efficiency")
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f,%.2f,%.3f\n", r.Mode, r.Workers, r.Seconds, r.Speedup, r.Efficiency)
	}
	return nil
}

// fleetScaling measures the worker-scaling datapoint over a real TCP
// fleet and optionally records it as JSON for trend tracking in CI.
func fleetScaling(full bool, jsonPath string) error {
	cfg := experiments.FleetScalingConfig{}
	if full {
		cfg = experiments.FleetScalingConfig{CC: 30, MM: 10, NN: 3, TPoints: 5, Workers: []int{1, 2, 4, 8}}
	}
	rows, err := experiments.FleetScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("workers,seconds,speedup,efficiency,points")
	for _, r := range rows {
		fmt.Printf("%d,%.3f,%.2f,%.3f,%d\n", r.Workers, r.Seconds, r.Speedup, r.Efficiency, r.Points)
	}
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                 `json:"experiment"`
		GeneratedAt time.Time              `json:"generated_at"`
		NumCPU      int                    `json:"num_cpu"`
		GoVersion   string                 `json:"go_version"`
		Rows        []experiments.FleetRow `json:"rows"`
	}{
		Experiment: "fleet-scaling", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Rows: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// vectorScaling measures the scalar-vs-vector multi-source datapoint —
// near-flat solve cost in the number of source weightings K is the
// vector engine's acceptance property — and optionally records it as
// JSON for trend tracking in CI.
func vectorScaling(full bool, jsonPath string) error {
	cfg := experiments.VectorScalingConfig{}
	if full {
		cfg = experiments.VectorScalingConfig{CC: 30, MM: 10, NN: 3, TPoints: 3, Ks: []int{1, 2, 4, 8, 16}}
	}
	rows, err := experiments.VectorScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("k,scalar_seconds,vector_seconds,scalar_points,vector_points,speedup")
	for _, r := range rows {
		fmt.Printf("%d,%.3f,%.3f,%d,%d,%.2f\n",
			r.K, r.ScalarSeconds, r.VectorSeconds, r.ScalarPoints, r.VectorPoints, r.Speedup)
	}
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                  `json:"experiment"`
		GeneratedAt time.Time               `json:"generated_at"`
		NumCPU      int                     `json:"num_cpu"`
		GoVersion   string                  `json:"go_version"`
		Rows        []experiments.VectorRow `json:"rows"`
	}{
		Experiment: "vector-scaling", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Rows: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// obsOverhead measures the instrumentation tax on the solver hot path —
// the observability layer's acceptance property is staying under a few
// percent of solve wall time — and optionally records the datapoint as
// JSON for trend tracking in CI.
func obsOverhead(full bool, jsonPath string) error {
	cfg := experiments.ObsOverheadConfig{}
	if full {
		cfg = experiments.ObsOverheadConfig{CC: 30, MM: 10, NN: 3, TPoints: 3, Rounds: 5}
	}
	res, err := experiments.ObsOverhead(cfg)
	if err != nil {
		return err
	}
	fmt.Println("enabled_seconds,disabled_seconds,overhead_pct,points,rounds")
	fmt.Printf("%.4f,%.4f,%.2f,%d,%d\n",
		res.EnabledSeconds, res.DisabledSeconds, res.OverheadPct, res.Points, res.Rounds)
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                        `json:"experiment"`
		GeneratedAt time.Time                     `json:"generated_at"`
		NumCPU      int                           `json:"num_cpu"`
		GoVersion   string                        `json:"go_version"`
		Result      experiments.ObsOverheadResult `json:"result"`
	}{
		Experiment: "obs-overhead", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Result: res,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// residentReuse measures the per-point latency trajectory of a
// prepared, warm-starting evaluator against per-point rebuilds on the
// same contour - the resident column dropping below the rebuild column
// after each contour block's first point is the prepared-model cache's
// acceptance property - and optionally records it as JSON for trend
// tracking in CI.
func residentReuse(full bool, jsonPath string) error {
	cfg := experiments.ResidentConfig{}
	if full {
		cfg = experiments.ResidentConfig{CC: 30, MM: 10, NN: 3, TPoints: 3}
	}
	rows, err := experiments.ResidentReuse(cfg)
	if err != nil {
		return err
	}
	var rebuild, resident float64
	warm, saved := 0, 0
	for _, r := range rows {
		rebuild += r.RebuildMicros
		resident += r.ResidentMicros
		if r.Warm {
			warm++
			saved += r.SweepsSaved
		}
	}
	fmt.Println("points,rebuild_seconds,resident_seconds,speedup,warm_starts,sweeps_saved")
	fmt.Printf("%d,%.4f,%.4f,%.2f,%d,%d\n",
		len(rows), rebuild/1e6, resident/1e6, rebuild/resident, warm, saved)
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                    `json:"experiment"`
		GeneratedAt time.Time                 `json:"generated_at"`
		NumCPU      int                       `json:"num_cpu"`
		GoVersion   string                    `json:"go_version"`
		Rows        []experiments.ResidentRow `json:"rows"`
	}{
		Experiment: "resident-reuse", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Rows: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// shardScaling measures wire v4 row-block sharding against whole-point
// farming at equal worker counts, one row per partition strategy
// (lockstep / planned / planned+batched) so the boundary-vertex,
// exchanged-value and exchange-second columns attribute the exchange
// tax — the projected column beating the monolithic path is the
// sharded engine's acceptance property, and the differential
// max|Δ| ≤ 1e-6 is enforced before any timing counts — and optionally
// records the rows as JSON for trend tracking in CI. -full adds a
// ≥10^6-state datapoint (voting 125/50/5, 1,000,750 states) at 4
// workers on top of the default 106k-state sweep.
func shardScaling(full bool, jsonPath string) error {
	rows, err := experiments.ShardScaling(experiments.ShardScalingConfig{})
	if err != nil {
		return err
	}
	if full {
		big, err := experiments.ShardScaling(experiments.ShardScalingConfig{
			CC: 125, MM: 50, NN: 5, Points: 1, Workers: []int{4},
		})
		if err != nil {
			return err
		}
		rows = append(rows, big...)
	}
	fmt.Println("workers,strategy,points,states,mono_s,mono_proj_s,shard_s,shard_proj_s,proj_speedup,sweeps,boundary,exchanged,compute_s,exchange_s,max_delta")
	for _, r := range rows {
		fmt.Printf("%d,%s,%d,%d,%.4f,%.4f,%.4f,%.4f,%.2f,%d,%d,%d,%.4f,%.4f,%.2e\n",
			r.Workers, r.Strategy, r.Points, r.States, r.MonoSeconds, r.MonoProjSeconds,
			r.ShardSeconds, r.ShardProjSeconds, r.ProjSpeedup,
			r.ShardSweeps, r.ShardBoundary, r.ShardExchanged,
			r.ComputeSeconds, r.ExchangeSeconds, r.MaxDelta)
	}
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                 `json:"experiment"`
		GeneratedAt time.Time              `json:"generated_at"`
		NumCPU      int                    `json:"num_cpu"`
		GoVersion   string                 `json:"go_version"`
		Rows        []experiments.ShardRow `json:"rows"`
	}{
		Experiment: "shard-scaling", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Rows: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// serveBench measures the served quantile path both ways over the real
// HTTP API — K-level batched reads from one resident CDF surface vs
// per-level bisection searches — and optionally records the datapoint
// as JSON for trend tracking in CI. The acceptance property is the
// surface arm's p99 batch latency (all K levels) landing below the cost
// of two cold bisection searches.
func serveBench(full bool, jsonPath string) error {
	cfg := experiments.ServeBenchConfig{}
	if full {
		cfg = experiments.ServeBenchConfig{CC: 30, MM: 10, NN: 3, Concurrency: 8, Rounds: 16}
	}
	res, err := experiments.ServeBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println("arm,levels,build_ms,cold_ms,qps,p50_ms,p95_ms,p99_ms")
	fmt.Printf("surface,%d,%.1f,,%.1f,%.2f,%.2f,%.2f\n",
		res.Levels, res.SurfaceBuildMS, res.SurfaceQPS, res.SurfaceP50MS, res.SurfaceP95MS, res.SurfaceP99MS)
	fmt.Printf("bisect,1,,%.1f,%.1f,%.2f,%.2f,%.2f\n",
		res.BisectColdMS, res.BisectQPS, res.BisectP50MS, res.BisectP95MS, res.BisectP99MS)
	fmt.Printf("# surface p99 (%d levels) = %.2f ms vs two cold searches = %.2f ms: under = %v (max rel delta %.2e)\n",
		res.Levels, res.SurfaceP99MS, 2*res.BisectColdPerSearchMS, res.P99UnderTwoSearches, res.MaxDeltaRel)
	if jsonPath == "" {
		return nil
	}
	doc := struct {
		Experiment  string                       `json:"experiment"`
		GeneratedAt time.Time                    `json:"generated_at"`
		NumCPU      int                          `json:"num_cpu"`
		GoVersion   string                       `json:"go_version"`
		Result      experiments.ServeBenchResult `json:"result"`
	}{
		Experiment: "serve-quantile", GeneratedAt: time.Now().UTC(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), Result: res,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

func figDensity(pts []experiments.CurvePoint) {
	fmt.Println("t,analytic,simulated")
	for _, p := range pts {
		fmt.Printf("%g,%g,%g\n", p.T, p.Analytic, p.Simulated)
	}
}

func fig4(full bool, reps int) error {
	opts := experiments.FigOptions{System: 0, Replications: reps}
	if full {
		opts.System = 1 // systems 2-5 need cluster-scale runtimes
	}
	pts, err := experiments.Fig4(opts)
	if err != nil {
		return err
	}
	figDensity(pts)
	return nil
}

func fig5(full bool) error {
	opts := experiments.FigOptions{System: 0}
	if full {
		opts.System = 1
	}
	res, err := experiments.Fig5(opts)
	if err != nil {
		return err
	}
	fmt.Println("t,cdf")
	for i := range res.Times {
		fmt.Printf("%g,%g\n", res.Times[i], res.CDF[i])
	}
	fmt.Printf("# IP(passage < %.4gs) = %.4f  (paper: IP(T < 440s) = 0.9858 on system 5)\n",
		res.QuantileT, res.QuantileP)
	return nil
}

func fig6(reps int) error {
	pts, err := experiments.Fig6(experiments.FigOptions{System: 0, Replications: reps})
	if err != nil {
		return err
	}
	figDensity(pts)
	return nil
}

func fig7() error {
	res, err := experiments.Fig7(experiments.FigOptions{System: 0})
	if err != nil {
		return err
	}
	fmt.Println("t,transient,steady_state")
	for i := range res.Times {
		fmt.Printf("%g,%g,%g\n", res.Times[i], res.Transient[i], res.SteadyState)
	}
	return nil
}

func ablations() error {
	tmp, err := os.MkdirTemp("", "hydra-ablation")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var all []experiments.AblationRow
	if rows, err := experiments.AblationIterativeVsDirect(0, 0, 0, 0); err != nil {
		return err
	} else {
		all = append(all, rows...)
	}
	if rows, err := experiments.AblationEulerVsLaguerre(0); err != nil {
		return err
	} else {
		all = append(all, rows...)
	}
	if rows, err := experiments.AblationInterning(0, 0, 0, 0); err != nil {
		return err
	} else {
		all = append(all, rows...)
	}
	if rows, err := experiments.AblationCheckpoint(tmp); err != nil {
		return err
	} else {
		all = append(all, rows...)
	}
	fmt.Println("study,variant,seconds,detail")
	for _, r := range all {
		fmt.Printf("%s,%s,%.4f,%s\n", r.Name, r.Variant, r.Seconds, strings.ReplaceAll(r.Detail, ",", ";"))
	}
	return nil
}
