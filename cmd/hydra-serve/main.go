// Command hydra-serve runs the resident analysis service: a model
// registry, a job scheduler over the in-process pipeline, and a
// fingerprint-keyed result cache behind an HTTP/JSON API.
//
// Where the batch tools (hydra, hydra-master) explore a state space,
// run one job and exit, hydra-serve keeps the expensive artifacts —
// explored state spaces and evaluated transform points — alive between
// requests, so repeated and concurrent queries on the same model cost
// one computation.
//
// Usage:
//
//	hydra-serve -addr :8700 -checkpoint serve.ckpt
//	hydra-serve -addr :8700 -backend fleet -listen :9441
//
// The second form executes every computation on a resident fleet of
// hydra-worker processes connected to -listen (wire protocol v4)
// instead of the in-process pool: start workers with
//
//	hydra-worker -spec model.dnamaca -master host:9441 -reconnect
//
// holding the same models clients upload, and the service scales with
// the worker count while keeping its registry, coalescing and result
// cache. Adding -shard N splits each solve's kernel into up to N row
// blocks held by different workers (boundary sub-vector exchange per
// sweep) instead of farming whole s-points — the right mode when one
// model is too large or slow for a single worker's sweep.
//
// API sketch (see README.md for request bodies):
//
//	POST   /v1/models                      upload a DNAmaca spec or pick a voting config
//	GET    /v1/models                      list resident models
//	GET    /v1/models/{id}                 model detail
//	DELETE /v1/models/{id}                 evict a model
//	POST   /v1/models/{id}/passage         passage density/CDF curve
//	POST   /v1/models/{id}/transient       transient state distribution curve
//	POST   /v1/models/{id}/quantile        passage-time quantile
//	GET    /v1/jobs                        recent job records
//	GET    /v1/jobs/{id}                   one job record (status, stats, result)
//	GET    /v1/stats                       registry / cache / scheduler counters
//	GET    /v1/traces/{id}                 recorded spans for one request ID
//	GET    /metrics                        Prometheus text exposition
//	GET    /healthz                        liveness
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// same listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hydra/internal/passage"
	"hydra/internal/pipeline"
	"hydra/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8700", "HTTP listen address")
		maxModels     = flag.Int("max-models", 16, "resident model bound (LRU beyond it)")
		cacheValues   = flag.Int("cache-values", 1<<22, "memory result-cache bound in resident complex values (one vector s-point on an N-state model costs N)")
		checkpoint    = flag.String("checkpoint", "", "disk checkpoint file backing the result cache")
		workers       = flag.Int("workers", runtime.NumCPU(), "worker pool size per computation (inproc backend)")
		maxConcurrent = flag.Int("max-concurrent", 2, "computations allowed to run at once")
		backendName   = flag.String("backend", "inproc", "compute backend: inproc | fleet")
		listen        = flag.String("listen", ":9441", "TCP address to accept fleet workers on (fleet backend)")
		batch         = flag.Int("batch", 8, "s-points per fleet assignment message")
		fleetWait     = flag.Duration("fleet-wait", 2*time.Minute, "fail a job after this long with no capable fleet worker (0 waits forever)")
		shardHint     = flag.Int("shard", 0, "split each fleet solve into up to N row-block shards across workers (0 or 1 = whole-point batches)")
		shardInner    = flag.Int("shard-inner", 0, "max local sweeps a shard member may run per halo exchange (v4.1 workers only; 0 or 1 = lock-step, the gauge still accepts convergence only on lock-step exchanges)")
		pprofOn       = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the HTTP listener")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var logHandler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(logHandler).With("component", "hydra-serve")

	var backend *pipeline.Fleet
	switch *backendName {
	case "inproc":
	case "fleet":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		backend = pipeline.NewFleet(ln, pipeline.FleetOptions{
			BatchSize:   *batch,
			WaitTimeout: *fleetWait,
			Logf:        log.New(os.Stderr, "hydra-serve: ", 0).Printf,
			// The shard conductor's convergence gauge must judge sweeps the
			// way the workers' solvers do; warm starts mirror the scheduler's
			// always-on policy (and hydra-worker's -warm default).
			ShardOptions: passage.Options{WarmStart: true, ShardInnerSweeps: *shardInner},
		})
		defer backend.Close()
		logger.Info("fleet backend accepting workers",
			"listen", backend.Addr().String(), "wire_version", pipeline.ProtocolVersion,
			"batch", *batch, "shard", *shardHint)
	default:
		fatal(fmt.Errorf("unknown backend %q (inproc or fleet)", *backendName))
	}
	if *shardHint > 1 && backend == nil {
		logger.Warn("-shard only applies to the fleet backend; in-process solves stay unsharded", "shard", *shardHint)
	}

	cfg := server.Config{
		MaxModels:      *maxModels,
		CacheValues:    *cacheValues,
		CheckpointPath: *checkpoint,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		Shard:          *shardHint,
		Logger:         logger,
	}
	if backend != nil {
		cfg.Backend = backend
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "backend", *backendName, "workers", *workers,
		"max_concurrent", *maxConcurrent, "pprof", *pprofOn)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fatal(err)
		}
		logger.Info("shutdown complete")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra-serve:", err)
	os.Exit(1)
}
