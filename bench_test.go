// Benchmarks regenerating the paper's tables and figures. Each
// Benchmark corresponds to one published artefact (see DESIGN.md §3 and
// EXPERIMENTS.md for the paper-vs-measured record):
//
//	BenchmarkTable1StateSpace      Table 1 — reachability/state-space generation
//	BenchmarkTable2Pipeline        Table 2 — distributed pipeline at several widths
//	BenchmarkFig4PassageDensity    Fig. 4 — voter-throughput passage density
//	BenchmarkFig5CDF               Fig. 5 — cumulative passage distribution
//	BenchmarkFig6FailureMode       Fig. 6 — failure-mode passage density
//	BenchmarkFig7Transient         Fig. 7 — transient state distribution
//	BenchmarkAblation*             design-choice studies from DESIGN.md
package hydra_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hydra"
	"hydra/internal/dist"
	"hydra/internal/lt"
	"hydra/internal/partition"
	"hydra/internal/passage"
	"hydra/internal/petri"
	"hydra/internal/pipeline"
	"hydra/internal/smp"
	"hydra/internal/voting"
)

// lazyModel memoises expensive model builds across benchmarks.
type lazyModel struct {
	once sync.Once
	m    *hydra.Model
	err  error
}

func (l *lazyModel) get(b *testing.B, build func() (*hydra.Model, error)) *hydra.Model {
	l.once.Do(func() { l.m, l.err = build() })
	if l.err != nil {
		b.Fatal(l.err)
	}
	return l.m
}

var (
	system0  lazyModel
	table2M  lazyModel
	ablation lazyModel
)

func sys0(b *testing.B) *hydra.Model {
	return system0.get(b, func() (*hydra.Model, error) { return hydra.VotingSystem(0) })
}

// BenchmarkTable1StateSpace regenerates the Table 1 state counts
// (systems 0–2; run cmd/hydra-bench -exp table1 -full for 3–5).
func BenchmarkTable1StateSpace(b *testing.B) {
	for _, row := range voting.Table1[:3] {
		b.Run(fmt.Sprintf("system%d", row.System), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := voting.CountStates(row.Config, voting.ReferenceVariant, 3_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if n != row.States {
					b.Fatalf("states = %d, paper %d", n, row.States)
				}
			}
			b.ReportMetric(float64(row.States), "states")
		})
	}
}

// BenchmarkTable2Pipeline runs the scalability workload (a 5-t-point
// passage density, 165 s-point evaluations) through the in-process
// pipeline at increasing worker counts — the measured half of Table 2.
func BenchmarkTable2Pipeline(b *testing.B) {
	m := table2M.get(b, func() (*hydra.Model, error) { return hydra.VotingConfig(30, 10, 3) })
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 30 })
	job, err := m.NewPassageJob("table2-bench", []int{0}, targets,
		[]float64{15, 30, 45, 60, 75}, false, nil)
	if err != nil {
		b.Fatal(err)
	}
	model := m.SMP()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := pipeline.Run(job.Spec(), func() pipeline.Evaluator {
					return pipeline.NewSolverEvaluator(model, passage.Options{})
				}, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(job.Points)), "s-points")
		})
	}
}

// BenchmarkFig4PassageDensity computes the voter-throughput density of
// system 0 at five t-points spanning the distribution.
func BenchmarkFig4PassageDensity(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	ts := []float64{15, 22, 30, 45, 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PassageDensity([]int{0}, targets, ts, &hydra.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5CDF computes the cumulative distribution of the same
// passage (the L(s)/s inversion of Fig. 5).
func BenchmarkFig5CDF(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	ts := []float64{15, 22, 30, 45, 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PassageCDF([]int{0}, targets, ts, &hydra.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6FailureMode computes the failure-mode passage density of
// system 0 over the low-probability head the paper plots.
func BenchmarkFig6FailureMode(b *testing.B) {
	m := sys0(b)
	p6, p7 := m.PlaceIndex("p6"), m.PlaceIndex("p7")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p7] >= 6 || mk[p6] >= 3 })
	ts := []float64{10, 25, 40, 60, 90}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PassageDensity([]int{0}, targets, ts, &hydra.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Transient computes one transient point of the Fig. 7
// curve (each t-point needs |targets| passage columns; system 0 has 111
// target states for p2 = 5).
func BenchmarkFig7Transient(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] == 5 })
	ts := []float64{10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TransientDistribution([]int{0}, targets, ts, &hydra.Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(targets)), "target-states")
}

// ablationModel is a mid-size voting system shared by the ablations.
func ablationSS(b *testing.B) *hydra.Model {
	return ablation.get(b, func() (*hydra.Model, error) { return hydra.VotingConfig(18, 6, 3) })
}

// BenchmarkAblationIterativeVsDirect times one s-point solved by the
// Eq. (10) iteration, the Gauss–Seidel form of Eq. (3), and dense
// elimination — the O(N²r) / O(N³) comparison of §3.
func BenchmarkAblationIterativeVsDirect(b *testing.B) {
	m := ablationSS(b)
	p6, p7 := m.PlaceIndex("p6"), m.PlaceIndex("p7")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p7] >= 6 || mk[p6] >= 3 })
	sv := passage.NewSolver(m.SMP(), passage.Options{})
	s := complex(0.1, 0.8)
	src := passage.SingleSource(0)

	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sv.IterativeLST(s, src, targets); err != nil {
				b.Fatal(err)
			}
			s += 1e-9 // new point defeats the solver's kernel memo
		}
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sv.DirectLST(s, src, targets); err != nil {
				b.Fatal(err)
			}
			s += 1e-9
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sv.DirectDenseLST(s, src, targets); err != nil {
				b.Fatal(err)
			}
			s += 1e-9
		}
	})
}

// BenchmarkAblationEulerVsLaguerre compares the end-to-end cost of the
// two inverters on the same 10-t-point density: Euler needs 33 s-points
// per t-point, Laguerre a flat 400.
func BenchmarkAblationEulerVsLaguerre(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	ts := make([]float64, 10)
	for i := range ts {
		ts[i] = 10 + 6*float64(i)
	}
	for _, method := range []string{"euler", "laguerre"} {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.PassageDensity([]int{0}, targets, ts, &hydra.Options{Workers: 2, Method: method}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInterning measures kernel assembly with the interned
// distribution table against naive per-term transform evaluation.
func BenchmarkAblationInterning(b *testing.B) {
	m := table2M.get(b, func() (*hydra.Model, error) { return hydra.VotingConfig(30, 10, 3) })
	model := m.SMP()
	u := model.NewKernelMatrix()
	s := complex(0.3, 1.7)
	b.Run("interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.FillKernel(s, u)
			s += 0.0001i
		}
	})
	b.Run("naive", func(b *testing.B) {
		var sink complex128
		for i := 0; i < b.N; i++ {
			for st := 0; st < model.N(); st++ {
				model.Terms(st, func(t smp.Term) {
					sink += complex(t.Prob, 0) * t.Dist.LST(s)
				})
			}
			s += 0.0001i
		}
		if sink == 42 {
			b.Fatal("unreachable")
		}
	})
	b.ReportMetric(float64(model.NumDistributions()), "distinct-dists")
}

// BenchmarkAblationCheckpoint measures the write-path overhead of
// checkpointing a pipeline run.
func BenchmarkAblationCheckpoint(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	job, err := m.NewPassageJob("ablation-ckpt", []int{0}, targets, []float64{20, 30}, false, nil)
	if err != nil {
		b.Fatal(err)
	}
	model := m.SMP()
	newEval := func() pipeline.Evaluator {
		return pipeline.NewSolverEvaluator(model, passage.Options{})
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pipeline.Run(job.Spec(), newEval, 2, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			ck, err := pipeline.OpenCheckpoint(fmt.Sprintf("%s/ck-%d.jsonl", dir, i))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := pipeline.Run(job.Spec(), newEval, 2, ck); err != nil {
				b.Fatal(err)
			}
			ck.Close()
		}
	})
}

// BenchmarkKernelAssembly is the microbenchmark behind every s-point:
// filling U(s) over the fixed sparsity pattern.
func BenchmarkKernelAssembly(b *testing.B) {
	ss, err := voting.Build(voting.Config{CC: 60, MM: 25, NN: 4},
		voting.DefaultDurations(), petri.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	model := ss.Model
	u := model.NewKernelMatrix()
	s := complex(0.2, 3.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.FillKernel(s, u)
	}
	b.ReportMetric(float64(model.KernelNNZ()), "nnz")
}

// BenchmarkSimulationWalks measures the validating simulator's raw
// throughput (passage walks per second).
func BenchmarkSimulationWalks(b *testing.B) {
	m := sys0(b)
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 18 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SimulatePassage([]int{0}, targets, &hydra.SimOptions{Replications: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "walks/op")
}

// BenchmarkLaplaceInversion isolates the inverters on an analytic
// transform (no solver cost).
func BenchmarkLaplaceInversion(b *testing.B) {
	d := dist.NewErlang(2, 3)
	ts := []float64{0.5, 1, 1.5, 2, 2.5}
	for _, inv := range []lt.Inverter{lt.DefaultEuler(), lt.DefaultLaguerre()} {
		b.Run(inv.Name(), func(b *testing.B) {
			pts := inv.Points(ts)
			vals := make([]complex128, len(pts))
			for i, s := range pts {
				vals[i] = d.LST(s)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inv.Invert(ts, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntraPointParallelism measures the partition-parallel
// Eq. (10) iteration against the serial kernel on one s-point — the §6
// future-work direction (parallelising within a single enormous model
// rather than across s-points).
func BenchmarkIntraPointParallelism(b *testing.B) {
	ss, err := voting.Build(voting.Config{CC: 60, MM: 25, NN: 4},
		voting.DefaultDurations(), petri.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	targets := voting.VotedAtLeast(ss, 60)
	src := passage.SingleSource(0)
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			sv := passage.NewSolver(ss.Model, passage.Options{IntraPointWorkers: workers})
			s := complex(0.05, 0.4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sv.IterativeLST(s, src, targets); err != nil {
					b.Fatal(err)
				}
				s += 1e-9
			}
		})
	}
}

// BenchmarkPartitionCutQuality reports the communication volume of BFS
// versus random placement on the system-1 kernel — the quantity a
// hypergraph partitioner would minimise for a distributed-memory
// deployment.
func BenchmarkPartitionCutQuality(b *testing.B) {
	ss, err := voting.Build(voting.Config{CC: 30, MM: 10, NN: 3},
		voting.DefaultDurations(), petri.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	u := ss.Model.NewKernelMatrix()
	ss.Model.FillKernel(1, u)
	n := ss.Model.N()
	weights := make([]int, n)
	for i := range weights {
		weights[i] = u.RowNNZ(i) + 1
	}
	const parts = 8
	b.Run("bfs-contiguous", func(b *testing.B) {
		var cut int
		for i := 0; i < b.N; i++ {
			a := partition.AssignByOrder(partition.BFSOrder(u), weights, parts)
			cut = partition.CutEdges(u, a)
		}
		b.ReportMetric(float64(cut), "cut-edges")
	})
	b.Run("random", func(b *testing.B) {
		r := rand.New(rand.NewSource(1))
		var cut int
		for i := 0; i < b.N; i++ {
			a := partition.AssignByOrder(r.Perm(n), weights, parts)
			cut = partition.CutEdges(u, a)
		}
		b.ReportMetric(float64(cut), "cut-edges")
	})
}
