// Package hydra computes passage-time densities, quantiles and transient
// state distributions for large structurally-unrestricted semi-Markov
// processes, reproducing the method of Bradley, Dingle, Harrison and
// Knottenbelt, "Distributed Computation of Passage Time Quantiles and
// Transient State Distributions in Large Semi-Markov Models"
// (IPDPS 2003).
//
// Models are specified either in the extended DNAmaca language of §5
// (LoadSpec) or picked from the paper's built-in distributed voting
// system family (VotingSystem). Analysis proceeds exactly as in the
// paper: the state space of the semi-Markov stochastic Petri net is
// generated, the Laplace transform of the requested measure is evaluated
// at the s-points demanded by a numerical inverter (Euler or Laguerre),
// and the inverter recovers the density, distribution or transient
// curve. The transform evaluations are embarrassingly parallel and can
// be spread over in-process workers or TCP workers with disk
// checkpointing (see Job, ServeMaster and RunWorker).
package hydra

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"hydra/internal/dnamaca"
	"hydra/internal/dtmc"
	"hydra/internal/petri"
	"hydra/internal/smp"
	"hydra/internal/voting"
)

// Marking is a vector of place token counts; state predicates receive
// markings in the order places were declared.
type Marking = petri.Marking

// Model is an explored semi-Markov model ready for analysis.
type Model struct {
	ss            *petri.StateSpace
	compiled      *dnamaca.Compiled // non-nil when loaded from a specification
	fingerprint   string            // content-derived identity (see Fingerprint)
	measures      []Measure
	stateMeasures []StateMeasure
	pi            []float64 // lazily computed embedded-chain steady state
}

// SpecFingerprint derives a model fingerprint from DNAmaca source text.
// It is the identity a fleet routes jobs by and the ID the hydra-serve
// registry stores models under, so a hydra-worker that loads the same
// spec file as the service advertises exactly the ID the service's jobs
// carry.
func SpecFingerprint(src string) string {
	sum := sha256.Sum256([]byte(src))
	return "m-" + hex.EncodeToString(sum[:8])
}

// VotingFingerprint is the fingerprint of a built-in Table 1 system.
func VotingFingerprint(system int) string {
	return fmt.Sprintf("voting-%d", system)
}

// VotingConfigFingerprint is the fingerprint of a custom-size voting
// system.
func VotingConfigFingerprint(cc, mm, nn int) string {
	return fmt.Sprintf("voting-%d-%d-%d", cc, mm, nn)
}

// Fingerprint returns the model's content-derived identity: the spec
// hash for LoadSpec models, the configuration name for voting models.
// Jobs built from this model carry it so a worker fleet can cross-check
// that master and worker hold the same model (the v1 protocol checked
// only the state count).
func (m *Model) Fingerprint() string { return m.fingerprint }

// StateMeasure is a resolved \statemeasure block: the long-run
// probability of a marking condition, evaluated through
// SteadyStateProbability.
type StateMeasure struct {
	Name   string
	States []int
}

// MeasureKind distinguishes passage-time and transient measures.
type MeasureKind int

const (
	// Passage is a first-passage-time measure (density/CDF/quantile).
	Passage MeasureKind = iota
	// Transient is a point-wise state-distribution measure.
	Transient
)

// Measure is an analysis request resolved against the state space,
// typically originating from a \passage or \transient block.
type Measure struct {
	Kind    MeasureKind
	Name    string
	Sources []int
	Targets []int
	Times   []float64
	Method  string // "euler" or "laguerre"
}

// ExploreLimit bounds state-space generation (markings).
const ExploreLimit = 5_000_000

// LoadSpec parses and compiles an extended-DNAmaca specification,
// explores its state space, and resolves any measure blocks.
func LoadSpec(src string) (*Model, error) {
	spec, err := dnamaca.Parse(src)
	if err != nil {
		return nil, err
	}
	compiled, err := dnamaca.Compile(spec)
	if err != nil {
		return nil, err
	}
	ss, err := petri.Explore(compiled.Net, petri.ExploreOptions{MaxStates: ExploreLimit})
	if err != nil {
		return nil, err
	}
	m := &Model{ss: ss, compiled: compiled, fingerprint: SpecFingerprint(src)}
	for i, ms := range spec.Passages {
		sources, targets, ts, err := compiled.ResolveMeasure(ms, ss)
		if err != nil {
			return nil, fmt.Errorf("hydra: passage block %d: %w", i+1, err)
		}
		m.measures = append(m.measures, Measure{
			Kind: Passage, Name: fmt.Sprintf("passage-%d", i+1),
			Sources: sources, Targets: targets, Times: ts, Method: ms.Method,
		})
	}
	for i, ms := range spec.Transients {
		sources, targets, ts, err := compiled.ResolveMeasure(ms, ss)
		if err != nil {
			return nil, fmt.Errorf("hydra: transient block %d: %w", i+1, err)
		}
		m.measures = append(m.measures, Measure{
			Kind: Transient, Name: fmt.Sprintf("transient-%d", i+1),
			Sources: sources, Targets: targets, Times: ts, Method: ms.Method,
		})
	}
	for _, sm := range spec.StateMeasures {
		states, err := compiled.ResolveStateMeasure(sm, ss)
		if err != nil {
			return nil, err
		}
		m.stateMeasures = append(m.stateMeasures, StateMeasure{Name: sm.Name, States: states})
	}
	return m, nil
}

// StateMeasures returns the resolved \statemeasure blocks of the
// specification (empty for programmatic models).
func (m *Model) StateMeasures() []StateMeasure { return m.stateMeasures }

// LoadSpecFile is LoadSpec reading from a file.
func LoadSpecFile(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hydra: reading specification: %w", err)
	}
	return LoadSpec(string(b))
}

// VotingSystem builds one of the paper's six voting-system
// configurations (Table 1): 0 ≤ system ≤ 5.
func VotingSystem(system int) (*Model, error) {
	ss, err := voting.BuildSystem(system, voting.DefaultDurations(), petri.ExploreOptions{MaxStates: ExploreLimit})
	if err != nil {
		return nil, err
	}
	return &Model{ss: ss, fingerprint: VotingFingerprint(system)}, nil
}

// VotingConfig builds a voting system with a custom size.
func VotingConfig(cc, mm, nn int) (*Model, error) {
	ss, err := voting.Build(voting.Config{CC: cc, MM: mm, NN: nn},
		voting.DefaultDurations(), petri.ExploreOptions{MaxStates: ExploreLimit})
	if err != nil {
		return nil, err
	}
	return &Model{ss: ss, fingerprint: VotingConfigFingerprint(cc, mm, nn)}, nil
}

// NumStates returns the size of the explored state space.
func (m *Model) NumStates() int { return m.ss.NumStates() }

// SMP exposes the underlying semi-Markov process (primarily for the
// command-line tools and benchmarks).
func (m *Model) SMP() *smp.Model { return m.ss.Model }

// InitialState returns the index of the initial marking (always 0).
func (m *Model) InitialState() int { return 0 }

// States returns the indices of all states whose marking satisfies pred.
func (m *Model) States(pred func(Marking) bool) []int {
	return m.ss.FindStates(pred)
}

// StateMarking returns the marking of a state index.
func (m *Model) StateMarking(i int) Marking { return m.ss.States[i] }

// PlaceIndex resolves a place name to its marking position, or -1.
func (m *Model) PlaceIndex(name string) int { return m.ss.Net.PlaceIndex(name) }

// Measures returns the measures resolved from the specification's
// \passage and \transient blocks (empty for programmatic models).
func (m *Model) Measures() []Measure { return m.measures }

// steadyState lazily computes and caches the embedded chain's stationary
// vector.
func (m *Model) steadyState() ([]float64, error) {
	if m.pi != nil {
		return m.pi, nil
	}
	pi, err := dtmc.SteadyStateGS(m.ss.Model.EmbeddedDTMC(), dtmc.Options{SkipIrreducibilityCheck: true})
	if err != nil {
		return nil, fmt.Errorf("hydra: embedded-chain steady state: %w", err)
	}
	m.pi = pi
	return pi, nil
}

// SteadyStateProbability returns the long-run probability that the SMP
// occupies one of the given states: the embedded chain's stationary
// vector reweighted by mean sojourn times (the horizontal line of
// Fig. 7). It requires an irreducible model.
func (m *Model) SteadyStateProbability(states []int) (float64, error) {
	pi, err := m.steadyState()
	if err != nil {
		return 0, err
	}
	ss := m.ss.Model.SteadyState(pi)
	var total float64
	for _, i := range states {
		if i < 0 || i >= len(ss) {
			return 0, fmt.Errorf("hydra: state %d out of range", i)
		}
		total += ss[i]
	}
	return total, nil
}
