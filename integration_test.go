package hydra_test

import (
	"math"
	"testing"

	"hydra"
)

// TestSystem1VoterPassageAnalyticVsSimulation runs the paper's Table 2
// model (system 1, 106,540 states) end to end: analytic CDF of the
// all-voters passage against 4,000 simulated walks. This is the largest
// routine integration test; -short skips it.
func TestSystem1VoterPassageAnalyticVsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("system 1 has 106,540 states; skipped with -short")
	}
	m, err := hydra.VotingSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 106540 {
		t.Fatalf("system 1 has %d states, want 106540", m.NumStates())
	}
	p2 := m.PlaceIndex("p2")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p2] >= 60 })
	sources := []int{m.InitialState()}

	samples, err := m.SimulatePassage(sources, targets, &hydra.SimOptions{
		Replications: 4000, Seed: 21, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q25 := hydra.SampleQuantile(samples, 0.25)
	q75 := hydra.SampleQuantile(samples, 0.75)
	ts := []float64{q25, q75}
	cdf, err := m.PassageCDF(sources, targets, ts, &hydra.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{0.25, 0.75}
	for i := range ts {
		// Quantile estimation noise at 4,000 walks plus inversion error:
		// a 3-percentage-point band is tight enough to catch real defects.
		if math.Abs(cdf.Values[i]-wants[i]) > 0.03 {
			t.Errorf("F(%v) = %v, want ≈ %v", ts[i], cdf.Values[i], wants[i])
		}
	}

	// Exact mean via first-step analysis brackets the simulated mean.
	mean, _, err := m.PassageMoments(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	simMean, simSD := hydra.SampleStats(samples)
	if math.Abs(mean-simMean) > 4*simSD/math.Sqrt(4000) {
		t.Errorf("exact mean %v vs simulated %v ± %v", mean, simMean, simSD/math.Sqrt(4000))
	}
}

// TestSystem1FailureModeMomentsFinite checks the rare-event passage on
// system 1 stays analysable: the exact mean time to complete failure is
// finite and large relative to the voting timescale.
func TestSystem1FailureModeMomentsFinite(t *testing.T) {
	if testing.Short() {
		t.Skip("system 1 moments solve 106,540 unknowns; skipped with -short")
	}
	m, err := hydra.VotingSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	p6, p7 := m.PlaceIndex("p6"), m.PlaceIndex("p7")
	targets := m.States(func(mk hydra.Marking) bool { return mk[p7] >= 25 || mk[p6] >= 4 })
	if len(targets) == 0 {
		t.Fatal("no failure-mode states in system 1")
	}
	mean, variance, err := m.PassageMoments([]int{m.InitialState()}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !(mean > 100) || math.IsInf(mean, 0) || math.IsNaN(mean) {
		t.Errorf("failure-mode mean = %v, expected a large finite value", mean)
	}
	if !(variance > 0) {
		t.Errorf("failure-mode variance = %v", variance)
	}
}
